// Unit tests for the fault-injection layer: FaultyMedium, Plan,
// InvariantChecker.  These exercise the decorator against the real
// medium models (Loopback for timing, CsmaBus/TokenRing for traffic).
#include "fault/faulty_medium.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/invariant_checker.hpp"
#include "net/csma_bus.hpp"
#include "net/loopback.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"

namespace fault {
namespace {

using net::NodeId;

net::Frame make_frame(NodeId src, NodeId dst, std::size_t bytes,
                      std::string tag) {
  return net::Frame{src, dst, bytes, std::any(std::move(tag))};
}

struct Delivery {
  NodeId at;
  sim::Time when;
  std::string tag;
};

class Collector {
 public:
  Collector(sim::Engine& e, net::Medium& m, std::vector<NodeId> nodes)
      : engine_(&e) {
    for (NodeId n : nodes) {
      m.attach(n, [this, n](const net::Frame& f) {
        deliveries.push_back({n, engine_->now(), f.as<std::string>()});
      });
    }
  }
  std::vector<Delivery> deliveries;

 private:
  sim::Engine* engine_;
};

// -------- timing transparency -------------------------------------------

TEST(FaultyMedium, EmptyPlanIsTimingTransparent) {
  // Run the same traffic through a bare Loopback and a wrapped one;
  // delivery times must be identical to the nanosecond.
  std::vector<Delivery> bare;
  {
    sim::Engine e;
    net::Loopback lo(e, sim::usec(25));
    Collector c(e, lo, {NodeId(0), NodeId(1)});
    lo.send(make_frame(NodeId(0), NodeId(1), 100, "a"));
    lo.send(make_frame(NodeId(1), NodeId(0), 50, "b"));
    e.run();
    bare = c.deliveries;
  }
  std::vector<Delivery> wrapped;
  {
    sim::Engine e;
    net::Loopback lo(e, sim::usec(25));
    FaultyMedium fm(e, lo, 1);
    Collector c(e, fm, {NodeId(0), NodeId(1)});
    fm.send(make_frame(NodeId(0), NodeId(1), 100, "a"));
    fm.send(make_frame(NodeId(1), NodeId(0), 50, "b"));
    e.run();
    wrapped = c.deliveries;
    EXPECT_EQ(fm.fault_log().size(), 0u);
    EXPECT_EQ(fm.deliveries(), 2u);
    EXPECT_EQ(fm.frames_sent(), lo.frames_sent());
    EXPECT_EQ(fm.bytes_sent(), lo.bytes_sent());
  }
  ASSERT_EQ(bare.size(), wrapped.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].when, wrapped[i].when);
    EXPECT_EQ(bare[i].at, wrapped[i].at);
    EXPECT_EQ(bare[i].tag, wrapped[i].tag);
  }
}

// -------- individual fault kinds ----------------------------------------

TEST(FaultyMedium, BackgroundDropLosesFrames) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 42,
                  Plan{}.background({.drop_prob = 1.0}));
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  for (int i = 0; i < 10; ++i) {
    fm.send(make_frame(NodeId(0), NodeId(1), 10, "x"));
  }
  e.run();
  EXPECT_EQ(c.deliveries.size(), 0u);
  EXPECT_EQ(fm.injected_drops(), 10u);
  for (const FaultRecord& r : fm.fault_log()) {
    EXPECT_EQ(r.kind, FaultKind::kDrop);
  }
}

TEST(FaultyMedium, DuplicateInjectsExtraCopyWithSameId) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 7,
                  Plan{}.background({.duplicate_prob = 1.0}));
  std::vector<std::uint64_t> seen_ids;
  fm.attach(NodeId(0), [](const net::Frame&) {});
  fm.attach(NodeId(1),
            [&](const net::Frame& f) { seen_ids.push_back(f.id); });
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "x"));
  e.run();
  ASSERT_EQ(seen_ids.size(), 2u);
  EXPECT_EQ(seen_ids[0], seen_ids[1]);
  EXPECT_NE(seen_ids[0], 0u);
  EXPECT_EQ(fm.injected_duplicates(), 1u);
}

TEST(FaultyMedium, CorruptFramesAreDiscardedAtTheReceiver) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 9,
                  Plan{}.background({.corrupt_prob = 1.0}));
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "x"));
  e.run();
  EXPECT_EQ(c.deliveries.size(), 0u);
  EXPECT_EQ(fm.corrupt_discards(), 1u);
  // Both the corruption and the checksum rejection are logged.
  ASSERT_EQ(fm.fault_log().size(), 2u);
  EXPECT_EQ(fm.fault_log()[0].kind, FaultKind::kCorrupt);
  EXPECT_EQ(fm.fault_log()[1].kind, FaultKind::kCorruptDiscard);
}

TEST(FaultyMedium, JitterDelaysButDelivers) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(10));
  FaultyMedium fm(e, lo, 11,
                  Plan{}.background({.max_jitter = sim::msec(1)}));
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  for (int i = 0; i < 8; ++i) {
    fm.send(make_frame(NodeId(0), NodeId(1), 10, "x"));
  }
  e.run();
  EXPECT_EQ(c.deliveries.size(), 8u);
  EXPECT_GT(fm.injected_delays(), 0u);
  for (const Delivery& d : c.deliveries) {
    EXPECT_GE(d.when, sim::usec(10));
    EXPECT_LE(d.when, sim::usec(10) + sim::msec(1));
  }
}

TEST(FaultyMedium, DropWindowOnlyAffectsItsInterval) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 3,
                  Plan{}.drop_between(sim::msec(1), sim::msec(2), 1.0));
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  // One frame before, one inside, one after the window.
  e.schedule(sim::msec(0), [&] {
    fm.send(make_frame(NodeId(0), NodeId(1), 10, "before"));
  });
  e.schedule(sim::msec(1) + sim::usec(500), [&] {
    fm.send(make_frame(NodeId(0), NodeId(1), 10, "inside"));
  });
  e.schedule(sim::msec(3), [&] {
    fm.send(make_frame(NodeId(0), NodeId(1), 10, "after"));
  });
  e.run();
  ASSERT_EQ(c.deliveries.size(), 2u);
  EXPECT_EQ(c.deliveries[0].tag, "before");
  EXPECT_EQ(c.deliveries[1].tag, "after");
  EXPECT_EQ(fm.injected_drops(), 1u);
}

TEST(FaultyMedium, CutLinkKillsUnicastBothWaysUntilHealed) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 5);
  Collector c(e, fm, {NodeId(0), NodeId(1), NodeId(2)});
  fm.cut_link(NodeId(0), NodeId(1));
  EXPECT_TRUE(fm.link_cut(NodeId(0), NodeId(1)));
  EXPECT_TRUE(fm.link_cut(NodeId(1), NodeId(0)));
  EXPECT_FALSE(fm.link_cut(NodeId(0), NodeId(2)));
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "dead"));
  fm.send(make_frame(NodeId(1), NodeId(0), 10, "dead"));
  fm.send(make_frame(NodeId(0), NodeId(2), 10, "alive"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].tag, "alive");

  fm.heal_link(NodeId(0), NodeId(1));
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "healed"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 2u);
  EXPECT_EQ(c.deliveries[1].tag, "healed");
}

TEST(FaultyMedium, PartitionSeversIslandFromRest) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 5);
  Collector c(e, fm, {NodeId(0), NodeId(1), NodeId(2), NodeId(3)});
  fm.partition({NodeId(0), NodeId(1)});
  // Within the island and within the rest: fine.  Across: dead.
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "island"));
  fm.send(make_frame(NodeId(2), NodeId(3), 10, "rest"));
  fm.send(make_frame(NodeId(0), NodeId(2), 10, "across"));
  fm.send(make_frame(NodeId(3), NodeId(1), 10, "across"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 2u);
  EXPECT_EQ(c.deliveries[0].tag, "island");
  EXPECT_EQ(c.deliveries[1].tag, "rest");

  fm.heal_all();
  fm.send(make_frame(NodeId(0), NodeId(2), 10, "healed"));
  e.run();
  EXPECT_EQ(c.deliveries.size(), 3u);
}

TEST(FaultyMedium, CrashedNodeNeitherSendsNorReceives) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 5);
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  std::vector<NodeId> crashes;
  std::vector<NodeId> restarts;
  fm.on_crash([&](NodeId n) { crashes.push_back(n); });
  fm.on_restart([&](NodeId n) { restarts.push_back(n); });

  fm.crash(NodeId(1));
  EXPECT_TRUE(fm.crashed(NodeId(1)));
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "to-crashed"));
  fm.send(make_frame(NodeId(1), NodeId(0), 10, "from-crashed"));
  e.run();
  EXPECT_EQ(c.deliveries.size(), 0u);

  fm.restart(NodeId(1));
  EXPECT_FALSE(fm.crashed(NodeId(1)));
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "back"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].tag, "back");
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0], NodeId(1));
  ASSERT_EQ(restarts.size(), 1u);
  EXPECT_EQ(restarts[0], NodeId(1));
}

TEST(FaultyMedium, CutKillsFramesAlreadyInFlight) {
  // The severance check runs again at the delivery boundary, so a frame
  // that left before the cut but would arrive after it is lost.
  sim::Engine e;
  net::Loopback lo(e, sim::msec(10));  // slow wire
  FaultyMedium fm(e, lo, 5, Plan{}.cut_link(sim::msec(5), NodeId(0), NodeId(1)));
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  fm.send(make_frame(NodeId(0), NodeId(1), 10, "in-flight"));
  e.run();
  EXPECT_EQ(c.deliveries.size(), 0u);
}

// -------- plan scheduling -----------------------------------------------

TEST(FaultyMedium, PlanActionsFireAtTheirTimes) {
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 5,
                  Plan{}
                      .crash(sim::msec(1), NodeId(1))
                      .restart(sim::msec(2), NodeId(1))
                      .cut_link(sim::msec(3), NodeId(0), NodeId(1))
                      .heal_all(sim::msec(4)));
  fm.attach(NodeId(0), [](const net::Frame&) {});
  fm.attach(NodeId(1), [](const net::Frame&) {});
  e.run();
  const auto& log = fm.fault_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].kind, FaultKind::kCrash);
  EXPECT_EQ(log[0].at, sim::msec(1));
  EXPECT_EQ(log[1].kind, FaultKind::kRestart);
  EXPECT_EQ(log[2].kind, FaultKind::kCut);
  EXPECT_EQ(log[3].kind, FaultKind::kHeal);
  EXPECT_EQ(log[3].at, sim::msec(4));
  EXPECT_FALSE(fm.crashed(NodeId(1)));
  EXPECT_FALSE(fm.link_cut(NodeId(0), NodeId(1)));
}

// -------- determinism ----------------------------------------------------

// One full run over a lossy CsmaBus: returns (fault digest, delivery
// count, final time) so two runs can be compared field by field.
struct RunResult {
  std::uint64_t digest;
  std::uint64_t deliveries;
  sim::Time end_time;
};

RunResult lossy_bus_run(std::uint64_t seed) {
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(99), {});
  FaultyMedium fm(e, bus, seed,
                  Plan{}
                      .background({.drop_prob = 0.2,
                                   .duplicate_prob = 0.1,
                                   .corrupt_prob = 0.05,
                                   .max_jitter = sim::usec(300)})
                      .cut_link(sim::msec(2), NodeId(0), NodeId(1))
                      .heal_all(sim::msec(4)));
  Collector c(e, fm, {NodeId(0), NodeId(1), NodeId(2)});
  for (int i = 0; i < 40; ++i) {
    e.schedule(sim::usec(100) * i, [&fm, i] {
      fm.send(make_frame(NodeId(i % 3), NodeId((i + 1) % 3), 64, "w"));
    });
  }
  e.run();
  return {fm.fault_digest(), fm.deliveries(), e.now()};
}

TEST(FaultyMedium, SameSeedSamePlanIsByteIdentical) {
  RunResult a = lossy_bus_run(1234);
  RunResult b = lossy_bus_run(1234);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(FaultyMedium, DifferentSeedsDiverge) {
  RunResult a = lossy_bus_run(1234);
  RunResult b = lossy_bus_run(4321);
  EXPECT_NE(a.digest, b.digest);
}

// -------- invariant checker ----------------------------------------------

TEST(InvariantChecker, CleanRunOverFaultyMediumHoldsAllInvariants) {
  sim::Engine e;
  net::TokenRing ring(e, {});
  FaultyMedium fm(e, ring, 77,
                  Plan{}
                      .background({.drop_prob = 0.15,
                                   .duplicate_prob = 0.1,
                                   .corrupt_prob = 0.1,
                                   .max_jitter = sim::usec(500)})
                      .crash(sim::msec(1), NodeId(2))
                      .restart(sim::msec(3), NodeId(2))
                      .partition(sim::msec(4), {NodeId(0)})
                      .heal_all(sim::msec(6)));
  InvariantChecker check(fm);
  Collector c(e, fm, {NodeId(0), NodeId(1), NodeId(2), NodeId(3)});
  for (int i = 0; i < 120; ++i) {
    e.schedule(sim::usec(80) * i, [&fm, i] {
      fm.send(make_frame(NodeId(i % 4), NodeId((i + 1) % 4), 32, "w"));
    });
  }
  e.run();
  EXPECT_TRUE(check.ok()) << check.violations().front();
  EXPECT_GT(check.deliveries_checked(), 0u);
  EXPECT_GT(check.faults_checked(), 0u);
}

TEST(InvariantChecker, CrashedReceiverIsGuardedNotDelivered) {
  // The medium's own guard must hold: a frame aimed at a crashed node is
  // recorded as a kCrashDrop and never reaches the handler, so the
  // checker stays clean.
  sim::Engine e;
  net::Loopback lo(e, sim::usec(1));
  FaultyMedium fm(e, lo, 1);
  InvariantChecker check(fm);
  Collector c(e, fm, {NodeId(0), NodeId(1)});
  fm.crash(NodeId(1));
  fm.send(make_frame(NodeId(0), NodeId(1), 8, "doomed"));
  e.run();
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(c.deliveries.size(), 0u);
  ASSERT_FALSE(fm.fault_log().empty());
  EXPECT_EQ(fm.fault_log().back().kind, FaultKind::kCrashDrop);
}

TEST(FaultRecord, DigestIsOrderSensitive) {
  FaultRecord a{sim::msec(1), FaultKind::kDrop, 1, NodeId(0), NodeId(1), 0};
  FaultRecord b{sim::msec(2), FaultKind::kCut, 0, NodeId(0), NodeId(1), 0};
  EXPECT_NE(digest({a, b}), digest({b, a}));
  EXPECT_EQ(digest({a, b}), digest({a, b}));
  EXPECT_NE(digest({a}), digest({}));
}

}  // namespace
}  // namespace fault
