// Trace determinism under chaos: the recorded event stream must be a
// pure function of (seed, plan, workload).  Re-running any chaos-sweep
// universe with a Recorder attached yields a byte-identical stream —
// pinned by the same FNV-1a digest scheme as fault::digest() — even
// though drops, duplicates, corruption and retransmits all emit into it.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "../support/co_check.hpp"
#include "charlotte/kernel.hpp"
#include "fault/faulty_medium.hpp"
#include "fault/invariant_checker.hpp"
#include "load/load.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/runtime.hpp"
#include "net/csma_bus.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"
#include "soda/kernel.hpp"
#include "sweep/sweep.hpp"
#include "trace/trace.hpp"

namespace fault {
namespace {

using net::NodeId;

soda::Payload so_bytes(std::string s) {
  return soda::Payload(s.begin(), s.end());
}

charlotte::Payload ch_bytes(std::string s) {
  return charlotte::Payload(s.begin(), s.end());
}

sim::Task<> so_server(soda::Network* nw, soda::Pid me, soda::Name* out,
                      sim::Gate* ready) {
  soda::Kernel& k = nw->kernel_of(me);
  soda::Name n = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, n), soda::Status::kOk);
  *out = n;
  ready->open();
  soda::Interrupt intr = co_await k.next_interrupt(me);
  auto* req = std::get_if<soda::RequestInterrupt>(&intr);
  CO_CHECK(req != nullptr);
  auto taken = co_await k.accept(me, req->request, soda::Oob{1, 0},
                                 so_bytes("pong"), 4096);
  CO_CHECK(taken.ok());
}

sim::Task<> so_client(soda::Network* nw, soda::Pid me, soda::Pid server,
                      soda::Name* name, sim::Gate* ready,
                      std::uint64_t trace) {
  co_await ready->wait();
  soda::Kernel& k = nw->kernel_of(me);
  auto req = co_await k.request(me, server, *name, soda::Oob{},
                                so_bytes("ping"), 4096, trace);
  CO_CHECK(req.ok());
  (void)co_await k.next_interrupt(me);
}

soda::Costs soda_ack_costs() {
  soda::Costs c;
  c.ack_timeout = sim::msec(10);
  return c;
}

struct RunResult {
  std::uint64_t trace_digest = 0;
  std::uint64_t fault_digest = 0;
  std::uint64_t emitted = 0;
};

// One chaos universe: the sweep scenario from chaos_test.cpp with a
// Recorder attached.  Returns the digests that must be reproducible.
// `tie` selects the engine's same-instant tie-break policy — determinism
// must hold under schedule exploration too, where the seed additionally
// permutes simultaneous events (sim::TieBreak::kSeededPermutation).
RunResult run_universe(std::uint64_t seed,
                       sim::TieBreak tie = sim::TieBreak::kFifo) {
  sim::Engine e;
  e.set_tie_policy({.kind = tie, .seed = seed});
  trace::Recorder rec(e);
  net::CsmaBus bus(e, sim::Rng(7));
  FaultyMedium fm(e, bus, seed,
                  Plan{}.background({.drop_prob = 0.15,
                                     .duplicate_prob = 0.1,
                                     .corrupt_prob = 0.05,
                                     .max_jitter = sim::usec(300)}));
  InvariantChecker check(fm);
  soda::Network nw(e, 3, fm, soda_ack_costs());

  soda::Pid s = nw.create_process(NodeId(0));
  soda::Pid c = nw.create_process(NodeId(1));
  soda::Name name;
  sim::Gate ready(e);
  e.spawn("server", so_server(&nw, s, &name, &ready));
  e.spawn("client", so_client(&nw, c, s, &name, &ready, rec.new_trace()));
  e.run();

  EXPECT_TRUE(check.ok()) << "seed " << seed << ": "
                          << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty()) << "seed " << seed;
  return {rec.digest(), fm.fault_digest(), rec.total_emitted()};
}

// A Charlotte universe under loss and duplication, exercising the v2
// ack machinery end to end: retransmit timers (adaptive RTO + backoff),
// watermark dedup of duplicated frames, and — when `coalesce` is on —
// owed-ack timers and piggybacked acks.  The coalescing timer is a new
// event source, so determinism is pinned with piggybacking both ON
// (default delay) and OFF (0 = the v1 wire: immediate standalone acks).
// `formation` additionally arms RPC formation (src/form/, DESIGN.md
// §14): the packer's deadline timers and batch dispatch are two more
// event sources, and a dropped frame now kills a whole Batch — the
// digests must stay a pure function of the seed regardless.
RunResult run_charlotte_universe(std::uint64_t seed, bool coalesce,
                                 bool formation = false) {
  sim::Engine e;
  trace::Recorder rec(e);
  net::TokenRing ring(e);
  FaultyMedium fm(e, ring, seed,
                  Plan{}.background({.drop_prob = 0.1,
                                     .duplicate_prob = 0.1,
                                     .max_jitter = sim::usec(300)}));
  InvariantChecker check(fm);
  charlotte::Costs costs;
  costs.send_retransmit_timeout = sim::msec(40);
  costs.max_send_attempts = 10;
  costs.ack_coalesce_delay = coalesce ? sim::msec(3) : sim::Duration(0);
  costs.form_delay = formation ? sim::msec(2) : sim::Duration(0);
  charlotte::Cluster cluster(e, 2, fm, costs);

  charlotte::Pid pa = cluster.create_process(NodeId(0));
  charlotte::Pid pb = cluster.create_process(NodeId(1));
  charlotte::LinkPair link = cluster.bootstrap_link(pa, pb);

  auto ping = [](charlotte::Cluster* cl, charlotte::Pid me,
                 charlotte::EndId end, std::uint64_t trace) -> sim::Task<> {
    charlotte::Kernel& k = cl->kernel_of(me);
    for (int i = 0; i < 3; ++i) {
      CO_CHECK_EQ(co_await k.send(me, end, ch_bytes("p"),
                                  charlotte::EndId::invalid(), trace),
                  charlotte::Status::kOk);
      CO_CHECK_EQ((co_await k.wait(me)).status, charlotte::Status::kOk);
      CO_CHECK_EQ(co_await k.receive(me, end, 64), charlotte::Status::kOk);
      CO_CHECK_EQ((co_await k.wait(me)).status, charlotte::Status::kOk);
    }
  };
  auto pong = [](charlotte::Cluster* cl, charlotte::Pid me,
                 charlotte::EndId end) -> sim::Task<> {
    charlotte::Kernel& k = cl->kernel_of(me);
    for (int i = 0; i < 3; ++i) {
      CO_CHECK_EQ(co_await k.receive(me, end, 64), charlotte::Status::kOk);
      CO_CHECK_EQ((co_await k.wait(me)).status, charlotte::Status::kOk);
      CO_CHECK_EQ(co_await k.send(me, end, ch_bytes("q")),
                  charlotte::Status::kOk);
      CO_CHECK_EQ((co_await k.wait(me)).status, charlotte::Status::kOk);
    }
  };
  e.spawn("ping", ping(&cluster, pa, link.end1, rec.new_trace()));
  e.spawn("pong", pong(&cluster, pb, link.end2));
  e.run();

  EXPECT_TRUE(check.ok()) << "seed " << seed << ": "
                          << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty()) << "seed " << seed;
  return {rec.digest(), fm.fault_digest(), rec.total_emitted()};
}

// The same lossy SODA universe on an explicit wire variant (DESIGN.md
// "ack protocol v2", SODA half).  `coalesce` off drops the owed-ack
// deadline timer (acks go out standalone, immediately); `v2` off runs
// the old per-fragment-ack wire with its done-ring dedup.  Each variant
// has a different set of timer event sources, and all of them must
// digest identically run over run.
RunResult run_soda_wire_universe(std::uint64_t seed, bool v2, bool coalesce) {
  sim::Engine e;
  trace::Recorder rec(e);
  net::CsmaBus bus(e, sim::Rng(7));
  FaultyMedium fm(e, bus, seed,
                  Plan{}.background({.drop_prob = 0.15,
                                     .duplicate_prob = 0.1,
                                     .corrupt_prob = 0.05,
                                     .max_jitter = sim::usec(300)}));
  InvariantChecker check(fm);
  soda::Costs costs;
  costs.ack_timeout = sim::msec(10);
  costs.cumulative_acks = v2;
  costs.ack_coalesce_delay = coalesce ? sim::msec(3) : sim::Duration(0);
  soda::Network nw(e, 3, fm, costs);

  soda::Pid s = nw.create_process(NodeId(0));
  soda::Pid c = nw.create_process(NodeId(1));
  soda::Name name;
  sim::Gate ready(e);
  e.spawn("server", so_server(&nw, s, &name, &ready));
  e.spawn("client", so_client(&nw, c, s, &name, &ready, rec.new_trace()));
  e.run();

  EXPECT_TRUE(check.ok()) << "seed " << seed << ": "
                          << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty()) << "seed " << seed;
  return {rec.digest(), fm.fault_digest(), rec.total_emitted()};
}

sim::Task<> ch_echo_serve(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    lynx::Incoming in = co_await ctx.receive();
    lynx::Message rep;
    rep.args = in.msg.args;
    co_await ctx.reply(in, rep);
  }
}

sim::Task<> ch_echo_drive(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n) {
  for (int i = 0; i < n; ++i) {
    lynx::Message req = lynx::make_message("echo", {std::int64_t(i)});
    lynx::Message rep = co_await ctx.call(link, std::move(req));
    CO_CHECK_EQ(std::get<std::int64_t>(rep.args[0]), i);
  }
}

// A Chrysalis universe: LYNX echo over the shared-memory backend.  No
// medium, so the seed enters through the engine's seeded-permutation
// tie-break instead — schedule exploration over the backend's new event
// sources (batched pump drains, the cheap-flag fast path, and — with
// `v2` — the consumed-notice coalescing timers).  `v2` off runs the
// one-notice-per-wakeup, post-consumed-immediately backend.
RunResult run_chrysalis_universe(std::uint64_t seed, bool v2) {
  sim::Engine e;
  e.set_tie_policy(
      {.kind = sim::TieBreak::kSeededPermutation, .seed = seed});
  trace::Recorder rec(e);
  chrysalis::Kernel kernel(e);
  lynx::ChrysalisBackendParams params;
  params.batched_drain = v2;
  params.consumed_coalesce_delay = v2 ? sim::msec(2) : sim::Duration(0);
  lynx::Process server(e, "server",
                       lynx::make_chrysalis_backend(kernel, NodeId(0), params));
  lynx::Process client(e, "client",
                       lynx::make_chrysalis_backend(kernel, NodeId(1), params));
  server.start();
  client.start();
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;
  e.spawn("connect", [](lynx::Process* sp, lynx::Process* cp,
                        lynx::LinkHandle* se,
                        lynx::LinkHandle* ce) -> sim::Task<> {
    auto [a, b] = co_await lynx::ChrysalisBackend::connect(*sp, *cp);
    *se = a;
    *ce = b;
  }(&server, &client, &server_end, &client_end));
  e.run();
  EXPECT_TRUE(server_end.valid() && client_end.valid());

  server.spawn_thread("serve", [&](lynx::ThreadCtx& ctx) {
    return ch_echo_serve(ctx, server_end, 4);
  });
  client.spawn_thread("drive", [&](lynx::ThreadCtx& ctx) {
    return ch_echo_drive(ctx, client_end, 4);
  });
  e.run();

  EXPECT_TRUE(e.process_failures().empty()) << "seed " << seed;
  EXPECT_TRUE(server.thread_failures().empty()) << "seed " << seed;
  EXPECT_TRUE(client.thread_failures().empty()) << "seed " << seed;
  return {rec.digest(), 0, rec.total_emitted()};
}

// A loaded universe: an open-loop Poisson scenario on the SODA backend
// with a Recorder watching the whole multi-client run.  Traced load is
// the regime where nondeterminism would hide (hundreds of interleaved
// RPCs), so the sweep pins its digest alongside the chaos universes'.
// With `formation` on, co-destined RPCs share wire frames — the clean
// (lossless) counterpart of the lossy Charlotte formation universe.
RunResult run_load_universe(std::uint64_t seed, bool formation = false) {
  load::Scenario sc;
  sc.clients = 2;
  sc.arrival = load::Arrival::kOpenPoisson;
  sc.offered_rate = 120.0;
  sc.mix = {{32, 32, 1.0}};
  sc.warmup = sim::msec(50);
  sc.measure = sim::msec(250);
  sc.drain = sim::msec(150);
  sc.seed = seed;
  if (formation) sc.form_delay = sim::msec(2);
  load::Runner runner(load::Substrate::kSoda, sc);
  trace::Recorder rec(runner.engine());
  const load::Report r = runner.run();
  EXPECT_EQ(r.errors, 0) << "seed " << seed;
  EXPECT_GT(r.samples, 0) << "seed " << seed;
  return {rec.digest(), 0, rec.total_emitted()};
}

// Every universe variant in the sweep, one run each.  One SeedDigests
// is one seed's worth of the sweep; the test below produces it twice —
// once fanned out over a sweep::ThreadPool, once sequentially — and the
// two must agree field for field.  (Universes are fully independent:
// one Engine each, and the only cross-engine state in src/ is the
// thread-local callable pool.)
struct SeedDigests {
  RunResult chaos;      // lossy SODA, FIFO tie-break
  RunResult perm;       // same universe, seeded-permutation tie-break
  RunResult ch;         // lossy Charlotte, ack piggybacking ON
  RunResult ch_v1;      // ... piggybacking OFF (v1 wire)
  RunResult ch_form;    // ... with RPC formation armed
  RunResult soda_nc;    // lossy SODA v2 wire, no coalescing
  RunResult soda_v1;    // lossy SODA v1 per-fragment-ack wire
  RunResult chry_v2;    // Chrysalis backend, batched drains + coalescing
  RunResult chry_v1;    // Chrysalis backend, v1 notices
  RunResult load;       // open-loop Poisson load on SODA
  RunResult load_form;  // ... with RPC formation
};

SeedDigests run_seed(std::uint64_t seed) {
  SeedDigests d;
  d.chaos = run_universe(seed);
  d.perm = run_universe(seed, sim::TieBreak::kSeededPermutation);
  d.ch = run_charlotte_universe(seed, /*coalesce=*/true);
  d.ch_v1 = run_charlotte_universe(seed, /*coalesce=*/false);
  d.ch_form =
      run_charlotte_universe(seed, /*coalesce=*/true, /*formation=*/true);
  d.soda_nc = run_soda_wire_universe(seed, /*v2=*/true, /*coalesce=*/false);
  d.soda_v1 = run_soda_wire_universe(seed, /*v2=*/false, /*coalesce=*/false);
  d.chry_v2 = run_chrysalis_universe(seed, /*v2=*/true);
  d.chry_v1 = run_chrysalis_universe(seed, /*v2=*/false);
  d.load = run_load_universe(seed);
  d.load_form = run_load_universe(seed, /*formation=*/true);
  return d;
}

void expect_same(const RunResult& a, const RunResult& b, const char* what,
                 std::uint64_t seed) {
  EXPECT_EQ(a.trace_digest, b.trace_digest) << what << " seed " << seed;
  EXPECT_EQ(a.fault_digest, b.fault_digest) << what << " seed " << seed;
  EXPECT_EQ(a.emitted, b.emitted) << what << " seed " << seed;
}

TEST(TraceDeterminism, SweepSeedsReproduceDigestsUnderAnyParallelism) {
  // Every universe in the sweep, run twice: same (seed, plan) => same
  // trace digest AND same fault digest, every time.  Different seeds
  // must not collapse onto one stream.  The two runs happen under
  // maximally different host schedules — wave A shards seeds across a
  // thread pool (several engines in flight at once), wave B replays the
  // whole sweep sequentially on this thread — because the digests are
  // the evidence that host parallelism cannot leak into a simulation.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) seeds.push_back(seed);

  sweep::ThreadPool pool(4);
  const std::vector<SeedDigests> wave_a = sweep::map(
      seeds, [](const std::uint64_t& seed) { return run_seed(seed); }, pool);

  std::set<std::uint64_t> distinct;
  std::set<std::uint64_t> distinct_load;
  std::set<std::uint64_t> distinct_charlotte;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::uint64_t seed = seeds[i];
    const SeedDigests& a = wave_a[i];
    const SeedDigests b = run_seed(seed);

    expect_same(a.chaos, b.chaos, "chaos", seed);
    ASSERT_GT(a.chaos.emitted, 0u) << "seed " << seed;
    ASSERT_NE(a.chaos.trace_digest, trace::Recorder::kEmptyDigest)
        << "seed " << seed;
    distinct.insert(a.chaos.trace_digest);

    // The same universe under seeded-permutation tie-break: still a pure
    // function of (seed, plan, policy), run after run.  The explorer's
    // shrinker and repro tokens depend on exactly this property.
    expect_same(a.perm, b.perm, "perm", seed);

    // The Charlotte lossy universe, piggybacking ON and OFF: the owed-ack
    // coalescing timer and the adaptive retransmit machinery must not
    // introduce schedule-dependent state.
    expect_same(a.ch, b.ch, "charlotte", seed);
    ASSERT_GT(a.ch.emitted, 0u) << "charlotte seed " << seed;
    distinct_charlotte.insert(a.ch.trace_digest);
    expect_same(a.ch_v1, b.ch_v1, "charlotte v1-wire", seed);

    // Lossy Charlotte with RPC formation armed (DESIGN.md §14): batch
    // deadline timers, shared-frame dispatch, and whole-batch drops all
    // ride the same seeded randomness, so the digests must still be
    // bit-identical run over run — and the stream must actually differ
    // from the frame-per-message wire (formation changes what the
    // recorder sees, not just internal counters).
    expect_same(a.ch_form, b.ch_form, "charlotte formation", seed);
    EXPECT_NE(a.ch_form.trace_digest, a.ch.trace_digest)
        << "formation left no mark on the stream, seed " << seed;

    // The lossy SODA universe on each wire variant: v2 with the
    // coalescing timer, v2 with immediate standalone acks, and the v1
    // per-fragment-ack wire.  (run_universe above already covers the
    // v2 default; these pin the knob-dependent event sources.)
    expect_same(a.soda_nc, b.soda_nc, "soda no-coalesce", seed);
    expect_same(a.soda_v1, b.soda_v1, "soda v1-wire", seed);

    // The Chrysalis backend universes, v2 (batched drains + consumed
    // coalescing) and v1 (one notice per wakeup, immediate consumed
    // notices), under seeded-permutation schedule exploration.
    expect_same(a.chry_v2, b.chry_v2, "chrysalis v2", seed);
    ASSERT_GT(a.chry_v2.emitted, 0u) << "chrysalis v2 seed " << seed;
    expect_same(a.chry_v1, b.chry_v1, "chrysalis v1", seed);

    expect_same(a.load, b.load, "load", seed);
    ASSERT_GT(a.load.emitted, 0u) << "load seed " << seed;
    distinct_load.insert(a.load.trace_digest);

    // The clean loaded universe with formation on: open-loop SODA RPCs
    // sharing frames, double-run to the same digest.
    expect_same(a.load_form, b.load_form, "load formation", seed);
    ASSERT_GT(a.load_form.emitted, 0u) << "load formation seed " << seed;
  }
  // Chaos differs per seed, so the streams (almost) all differ too.
  EXPECT_GT(distinct.size(), 90u);
  // Load arrivals are Poisson-per-seed: streams must not collapse either.
  EXPECT_GT(distinct_load.size(), 90u);
  // Charlotte chaos (drops -> retransmits -> re-acks) differs per seed.
  EXPECT_GT(distinct_charlotte.size(), 90u);
}

TEST(TraceDeterminism, FaultEventsLandInTheSameStream) {
  // In an impaired universe the fault layer's injections (drop /
  // duplicate / corrupt) must appear in the trace stream alongside the
  // kernel's retransmits, each carrying the frame's causal TraceId.
  sim::Engine e;
  trace::Recorder rec(e);
  net::CsmaBus bus(e, sim::Rng(7));
  FaultyMedium fm(e, bus, 42,
                  Plan{}.background({.drop_prob = 0.3,
                                     .duplicate_prob = 0.1,
                                     .max_jitter = sim::usec(300)}));
  InvariantChecker check(fm);
  soda::Network nw(e, 3, fm, soda_ack_costs());

  soda::Pid s = nw.create_process(NodeId(0));
  soda::Pid c = nw.create_process(NodeId(1));
  soda::Name name;
  sim::Gate ready(e);
  e.spawn("server", so_server(&nw, s, &name, &ready));
  e.spawn("client", so_client(&nw, c, s, &name, &ready, rec.new_trace()));
  e.run();
  ASSERT_TRUE(check.ok()) << check.violations().front();

  std::map<std::string, std::size_t> track_counts;
  std::set<std::string> labels;
  bool fault_with_trace = false;
  for (const trace::Record& r : rec.snapshot()) {
    ++track_counts[rec.track_name(r.track)];
    labels.insert(rec.label_name(r.label));
    if (rec.track_name(r.track) == "fault" && r.trace != 0) {
      fault_with_trace = true;
    }
  }
  EXPECT_GT(track_counts["wire"], 0u);   // frame.tx / frame.rx
  EXPECT_GT(track_counts["fault"], 0u);  // injected impairments
  EXPECT_TRUE(labels.count("drop") || labels.count("duplicate") ||
              labels.count("delay"))
      << "no impairment labels recorded";
  EXPECT_TRUE(fault_with_trace)
      << "fault records must carry the impaired frame's TraceId";
}

}  // namespace
}  // namespace fault
