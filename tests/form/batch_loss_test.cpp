// Batch-loss recovery (ISSUE 7 satellite): dropping one form::Batch
// frame loses every enclosure in it — all-or-nothing, because the fault
// layer drops whole net::Frames — and each substrate's existing
// recovery machinery must re-deliver all of them.
//
//   * Charlotte: the per-Msg retransmit timer resends until the drop
//     window closes (the retransmits re-batch on their way out).
//   * SODA: transport-level per-fragment acks (Costs::ack_timeout)
//     drive retransmission of every enclosed ReqFrag.
//   * Chrysalis has no wire frames; its formation batches dual-queue
//     notices, and the loss analogue is a batched enqueue_many finding
//     the queue full — overflow data are dropped exactly as a lone
//     enqueue's would be, the call reports kQueueFull, and the caller
//     (the backend's flags-are-absolute recheck discipline) re-derives
//     and re-posts the hints.  The kernel-level contract is pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <variant>
#include <vector>

#include "../support/co_check.hpp"
#include "charlotte/kernel.hpp"
#include "chrysalis/kernel.hpp"
#include "fault/faulty_medium.hpp"
#include "net/csma_bus.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"
#include "soda/kernel.hpp"

namespace form {
namespace {

using net::NodeId;

// ---- Charlotte: dropped batch re-delivered by retransmit timers -----------

charlotte::Payload ch_bytes(std::string s) {
  return charlotte::Payload(s.begin(), s.end());
}
std::string ch_text(const charlotte::Payload& p) {
  return std::string(p.begin(), p.end());
}

sim::Task<> ch_send(charlotte::Cluster* cl, charlotte::Pid me,
                    charlotte::EndId end, std::string body) {
  charlotte::Kernel& k = cl->kernel_of(me);
  CO_CHECK_EQ(co_await k.send(me, end, ch_bytes(std::move(body))),
              charlotte::Status::kOk);
  charlotte::Completion c = co_await k.wait(me);
  CO_CHECK_EQ(c.status, charlotte::Status::kOk);
  CO_CHECK_EQ(c.direction, charlotte::Direction::kSend);
}

sim::Task<> ch_recv(charlotte::Cluster* cl, charlotte::Pid me,
                    charlotte::EndId end, std::vector<std::string>* log,
                    std::vector<sim::Time>* when) {
  charlotte::Kernel& k = cl->kernel_of(me);
  CO_CHECK_EQ(co_await k.receive(me, end, 4096), charlotte::Status::kOk);
  charlotte::Completion c = co_await k.wait(me);
  CO_CHECK_EQ(c.status, charlotte::Status::kOk);
  log->push_back(ch_text(c.data));
  when->push_back(cl->engine().now());
}

TEST(FormBatchLoss, CharlotteDroppedBatchIsFullyRedelivered) {
  sim::Engine e;
  net::TokenRing ring(e);
  // Everything node0 -> node1 dies for the first 100 ms: the initial
  // Msg batch AND its first re-batched retransmissions.  The reverse
  // (ack) direction stays clean.
  constexpr sim::Duration kDark = sim::msec(100);
  fault::FaultyMedium fm(
      e, ring, 21,
      fault::Plan{}.drop_between(0, kDark, 1.0, NodeId(0), NodeId(1)));
  charlotte::Costs costs;
  costs.ack_coalesce_delay = 0;
  costs.form_delay = sim::msec(2);
  costs.send_retransmit_timeout = sim::msec(40);
  costs.max_send_attempts = 10;
  charlotte::Cluster cluster(e, 2, fm, costs);

  // Three sender processes on node 0, all posting at t = 0: their Msg
  // frames leave the kernel within one formation window and share one
  // Batch — the frame the plan kills, losing all three enclosures.
  constexpr int kN = 3;
  std::vector<charlotte::LinkPair> links;
  std::vector<charlotte::Pid> senders;
  std::vector<charlotte::Pid> receivers;
  for (int i = 0; i < kN; ++i) {
    senders.push_back(cluster.create_process(NodeId(0)));
    receivers.push_back(cluster.create_process(NodeId(1)));
    links.push_back(cluster.bootstrap_link(senders.back(), receivers.back()));
  }
  std::vector<std::string> log;
  std::vector<sim::Time> when;
  for (int i = 0; i < kN; ++i) {
    e.spawn("send" + std::to_string(i),
            ch_send(&cluster, senders[i], links[i].end1,
                    "m" + std::to_string(i)));
    e.spawn("recv" + std::to_string(i),
            ch_recv(&cluster, receivers[i], links[i].end2, &log, &when));
  }
  e.run();

  // Every enclosure of the dropped batch arrived exactly once.
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kN));
  std::sort(log.begin(), log.end());
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)], "m" + std::to_string(i));
  }
  EXPECT_TRUE(e.process_failures().empty());

  // The recovery really ran: batches formed, frames were injected-drop
  // casualties, retransmits fired, and nothing landed inside the dark
  // window.
  const form::Packer& packer = cluster.kernel(NodeId(0)).packer();
  EXPECT_GE(packer.batches_sent(), 1u);
  EXPECT_GE(packer.enclosures_batched(), static_cast<std::uint64_t>(kN));
  EXPECT_GE(fm.injected_drops(), 1u);
  EXPECT_GT(cluster.kernel(NodeId(0)).nack_retransmits(), 0u);
  for (sim::Time t : when) EXPECT_GT(t, kDark);
}

// ---- SODA: dropped batch re-delivered by transport acks -------------------

soda::Payload so_bytes(std::string s) {
  return soda::Payload(s.begin(), s.end());
}
std::string so_text(const soda::Payload& p) {
  return std::string(p.begin(), p.end());
}

sim::Task<> so_server(soda::Network* nw, soda::Pid me, soda::Name* out,
                      sim::Gate* ready, int n, std::vector<std::string>* log) {
  soda::Kernel& k = nw->kernel_of(me);
  soda::Name name = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, name), soda::Status::kOk);
  *out = name;
  ready->open();
  for (int i = 0; i < n; ++i) {
    soda::Interrupt intr = co_await k.next_interrupt(me);
    auto* req = std::get_if<soda::RequestInterrupt>(&intr);
    CO_CHECK(req != nullptr);
    auto taken =
        co_await k.accept(me, req->request, soda::Oob{}, so_bytes("pong"),
                          4096);
    CO_CHECK(taken.ok());
    log->push_back("served:" + so_text(taken.value()));
  }
}

sim::Task<> so_client(soda::Network* nw, soda::Pid me, soda::Pid server,
                      soda::Name* name, sim::Gate* ready, int n,
                      std::vector<std::string>* log,
                      std::vector<sim::Time>* when) {
  co_await ready->wait();
  soda::Kernel& k = nw->kernel_of(me);
  // Back-to-back requests: each request call pays ~2.3 ms of kernel
  // work (call overhead + frame processing), so all n ReqFrags enter
  // the packer inside one 8 ms formation window and leave as a single
  // Batch — the frame the plan kills.
  for (int i = 0; i < n; ++i) {
    auto req = co_await k.request(me, server, *name, soda::Oob{},
                                  so_bytes("p" + std::to_string(i)), 4096);
    CO_CHECK(req.ok());
  }
  for (int i = 0; i < n; ++i) {
    soda::Interrupt intr = co_await k.next_interrupt(me);
    auto* done = std::get_if<soda::CompletionInterrupt>(&intr);
    CO_CHECK(done != nullptr);
    log->push_back("got:" + so_text(done->data));
    when->push_back(nw->engine().now());
  }
}

TEST(FormBatchLoss, SodaDroppedBatchIsFullyRedelivered) {
  sim::Engine e;
  net::CsmaBusParams bus_params;
  bus_params.broadcast_drop_prob = 0.0;
  net::CsmaBus bus(e, sim::Rng(7), bus_params);
  // The client -> server direction is dark for 50 ms; the per-fragment
  // transport retransmit (every 12 ms) carries the batch through once
  // the window closes.  Give-up is 12 attempts = 144 ms, far past it.
  constexpr sim::Duration kDark = sim::msec(50);
  fault::FaultyMedium fm(
      e, bus, 33,
      fault::Plan{}.drop_between(0, kDark, 1.0, NodeId(1), NodeId(0)));
  soda::Costs costs;
  costs.form_delay = sim::msec(8);
  costs.ack_timeout = sim::msec(12);
  costs.max_transport_attempts = 12;
  soda::Network nw(e, 2, fm, costs);

  soda::Pid server = nw.create_process(NodeId(0));
  soda::Pid client = nw.create_process(NodeId(1));
  constexpr int kN = 3;
  soda::Name name;
  sim::Gate ready(e);
  std::vector<std::string> server_log;
  std::vector<std::string> client_log;
  std::vector<sim::Time> when;
  e.spawn("server", so_server(&nw, server, &name, &ready, kN, &server_log));
  e.spawn("client", so_client(&nw, client, server, &name, &ready, kN,
                              &client_log, &when));
  e.run();

  ASSERT_EQ(server_log.size(), static_cast<std::size_t>(kN));
  std::sort(server_log.begin(), server_log.end());
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(server_log[static_cast<std::size_t>(i)],
              "served:p" + std::to_string(i));
  }
  ASSERT_EQ(client_log.size(), static_cast<std::size_t>(kN));
  for (const std::string& got : client_log) EXPECT_EQ(got, "got:pong");
  EXPECT_TRUE(e.process_failures().empty());

  // The batch formed, died, and was re-driven by the transport layer.
  const form::Packer& packer = nw.kernel(NodeId(1)).packer();
  EXPECT_GE(packer.batches_sent(), 1u);
  EXPECT_GE(packer.enclosures_batched(), static_cast<std::uint64_t>(kN));
  EXPECT_GE(fm.injected_drops(), 1u);
  for (sim::Time t : when) EXPECT_GT(t, kDark);
}

// ---- Chrysalis: batched notices vs. a full dual queue ---------------------

TEST(FormBatchLoss, ChrysalisBatchedEnqueueSurvivesQueueOverflowViaRetry) {
  sim::Engine e;
  chrysalis::Kernel kernel(e);
  chrysalis::Pid p = kernel.create_process(NodeId(0));

  std::vector<std::uint32_t> got;
  std::vector<chrysalis::Status> sts;
  std::uint64_t dispatches = 0;
  auto prog = [](chrysalis::Kernel* k, chrysalis::Pid pid,
                 std::vector<std::uint32_t>* out,
                 std::vector<chrysalis::Status>* st,
                 std::uint64_t* calls) -> sim::Task<> {
    auto dq = co_await k->make_dual_queue(pid, 2);
    CO_CHECK(dq.ok());
    auto ev = co_await k->make_event(pid);
    CO_CHECK(ev.ok());
    const std::uint64_t before = k->enqueue_calls();
    // Four batched notices against capacity 2: the first two land, the
    // overflow pair is dropped on the floor — hints are hints — and the
    // single dispatch honestly reports the loss.  (gcc can't keep an
    // initializer list's backing array across a co_await suspension, so
    // the batches are named vectors.)
    std::vector<std::uint32_t> first{1, 2, 3, 4};
    st->push_back(co_await k->enqueue_many(pid, dq.value(), std::move(first)));
    for (int i = 0; i < 2; ++i) {
      auto o = co_await k->dequeue(pid, dq.value(), ev.value());
      CO_CHECK(o.ok());
      CO_CHECK(!o.value().would_block);
      out->push_back(o.value().datum);
    }
    // The caller's recovery — Chrysalis flags are ABSOLUTE, so the
    // recheck discipline re-derives the lost hints and re-posts them.
    std::vector<std::uint32_t> retry{3, 4};
    st->push_back(co_await k->enqueue_many(pid, dq.value(), std::move(retry)));
    for (int i = 0; i < 2; ++i) {
      auto o = co_await k->dequeue(pid, dq.value(), ev.value());
      CO_CHECK(o.ok());
      CO_CHECK(!o.value().would_block);
      out->push_back(o.value().datum);
    }
    *calls = k->enqueue_calls() - before;
  };
  e.spawn("p", prog(&kernel, p, &got, &sts, &dispatches));
  e.run();

  ASSERT_EQ(sts.size(), 2u);
  EXPECT_EQ(sts[0], chrysalis::Status::kQueueFull);  // overflow reported
  EXPECT_EQ(sts[1], chrysalis::Status::kOk);         // retry delivered
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3, 4}));  // FIFO kept
  // Six data moved in two dispatches — the frames-per-message analogue
  // Chrysalis formation is measured by (Kernel::enqueue_calls, E16).
  EXPECT_EQ(dispatches, 2u);
  EXPECT_TRUE(e.process_failures().empty());
}

}  // namespace
}  // namespace form
