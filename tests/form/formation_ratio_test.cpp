// Formation frame-economy regression (ISSUE 7 acceptance): at pipeline
// depth 8 — one closed-loop client pipelining across eight channels into
// one server — turning formation on must at least HALVE the wire frames
// per delivered request on every substrate.
//
// The 2.0 floor is structural: each RPC contributes exactly two
// same-direction wire ops per direction (e.g. SODA's accept + reply
// legs, Chrysalis's consume-ack + reply notices), so pairwise batching
// of a depth-8 wave collapses them 2:1; Charlotte's token ring batches
// across operations too (the ring rotation is the bottleneck, so whole
// waves re-form behind it) and clears the bar with margin.  The
// formation windows match bench_capacity's E16 operating points: about
// one token rotation for Charlotte, under the 12 ms transport RTO for
// SODA, about one pump service pass for Chrysalis.
//
// Everything here is deterministic (fixed seeds, discrete sim), so the
// ratios are exact reproducible values, not noisy estimates.
#include <gtest/gtest.h>

#include "load/runner.hpp"
#include "load/scenario.hpp"

namespace load {
namespace {

Scenario depth8_scenario(sim::Duration form_delay) {
  Scenario sc;
  sc.name = form_delay > 0 ? "depth8+form" : "depth8";
  sc.topology = Topology::kFanIn;
  sc.clients = 1;  // consecutive ops co-destined: one client, one server
  sc.servers = 1;
  sc.channels_per_client = 8;  // pipeline depth 8
  sc.arrival = Arrival::kClosed;
  sc.think = 0;
  sc.warmup = sim::msec(250);
  sc.measure = sim::sec(1);
  sc.drain = sim::msec(500);
  sc.form_delay = form_delay;
  return sc;
}

sim::Duration window_for(Substrate sub) {
  switch (sub) {
    case Substrate::kCharlotte: return sim::msec(20);
    case Substrate::kSoda: return sim::msec(5);
    case Substrate::kChrysalis: return sim::msec(10);
  }
  return sim::msec(2);
}

void expect_halved(Substrate sub) {
  const Report off = run_scenario(sub, depth8_scenario(0));
  const Report on = run_scenario(sub, depth8_scenario(window_for(sub)));

  ASSERT_GT(off.completed, 0) << off.backend << " baseline delivered nothing";
  ASSERT_GT(on.completed, 0) << on.backend << " formation delivered nothing";
  EXPECT_EQ(off.errors, 0);
  EXPECT_EQ(on.errors, 0);
  ASSERT_GT(on.frames_per_op, 0.0);

  const double ratio = off.frames_per_op / on.frames_per_op;
  // >= 2x fewer frames per delivered message.  The epsilon only covers
  // float division of the exact integer counts landing the SODA and
  // Chrysalis points precisely ON the structural 2.0 floor.
  EXPECT_GE(ratio, 2.0 - 1e-9)
      << off.backend << ": " << off.frames_per_op << " frames/op off vs "
      << on.frames_per_op << " on (ratio " << ratio << ")";
}

TEST(FormationRatio, CharlotteHalvesFramesPerOpAtDepth8) {
  expect_halved(Substrate::kCharlotte);
}

TEST(FormationRatio, SodaHalvesFramesPerOpAtDepth8) {
  expect_halved(Substrate::kSoda);
}

TEST(FormationRatio, ChrysalisHalvesFramesPerOpAtDepth8) {
  expect_halved(Substrate::kChrysalis);
}

}  // namespace
}  // namespace load
