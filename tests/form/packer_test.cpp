// Unit tests for the form::Packer (DESIGN.md §14): the three flush
// triggers, the delay==0 passthrough guarantee, the lone-enclosure
// unwrap, broadcast ordering, and teardown behaviour.
#include "form/packer.hpp"

#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "form/batch.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace form {
namespace {

using net::NodeId;

// A loopback that records everything the packer emits, with the
// simulated time each frame left, so tests can pin both ordering and
// the deadline trigger's timing.
class RecordingMedium final : public net::Medium {
 public:
  struct Record {
    net::Frame frame;
    sim::Time at;
    bool was_broadcast = false;
  };

  explicit RecordingMedium(sim::Engine& engine) : engine_(&engine) {}

  void attach(NodeId, net::FrameHandler) override {}
  void send(net::Frame frame) override {
    stamp(frame);
    ++frames_;
    bytes_ += frame.payload_bytes;
    log.push_back(Record{std::move(frame), engine_->now(), false});
  }
  void broadcast(net::Frame frame) override {
    stamp(frame);
    ++frames_;
    bytes_ += frame.payload_bytes;
    log.push_back(Record{std::move(frame), engine_->now(), true});
  }
  [[nodiscard]] std::uint64_t frames_sent() const override { return frames_; }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_; }

  std::vector<Record> log;

 private:
  sim::Engine* engine_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

net::Frame frame_to(NodeId src, NodeId dst, std::size_t bytes,
                    std::string tag, std::uint64_t trace = 0) {
  net::Frame f{src, dst, bytes, std::move(tag)};
  f.trace_id = trace;
  return f;
}

std::string tag_of(const net::Frame& f) { return f.as<std::string>(); }

TEST(FormPacker, DelayZeroIsExactPassthrough) {
  sim::Engine e;
  RecordingMedium medium(e);
  Packer packer(e, medium, NodeId(0), Params{sim::Duration(0), 1024});
  EXPECT_FALSE(packer.enabled());

  packer.submit(frame_to(NodeId(0), NodeId(1), 40, "a", 7));
  packer.submit(frame_to(NodeId(0), NodeId(1), 40, "b"));
  packer.submit(frame_to(NodeId(0), NodeId(2), 40, "c"));
  e.run();

  // Frame-per-message, byte-identical, and immediate: no Batch frames,
  // no formation counters, nothing held back for a deadline.
  ASSERT_EQ(medium.log.size(), 3u);
  EXPECT_EQ(tag_of(medium.log[0].frame), "a");
  EXPECT_EQ(medium.log[0].frame.payload_bytes, 40u);
  EXPECT_EQ(medium.log[0].frame.trace_id, 7u);
  EXPECT_EQ(medium.log[0].at, sim::Time(0));
  EXPECT_EQ(tag_of(medium.log[2].frame), "c");
  EXPECT_EQ(packer.batches_sent(), 0u);
  EXPECT_EQ(packer.singles_sent(), 0u);
}

TEST(FormPacker, CoDestinedFramesShareOneBatchAtTheDeadline) {
  sim::Engine e;
  RecordingMedium medium(e);
  Packer packer(e, medium, NodeId(0), Params{sim::msec(2), 1024});
  EXPECT_TRUE(packer.enabled());

  packer.submit(frame_to(NodeId(0), NodeId(1), 10, "a"));
  packer.submit(frame_to(NodeId(0), NodeId(1), 20, "b", 42));
  packer.submit(frame_to(NodeId(0), NodeId(1), 30, "c", 43));
  EXPECT_TRUE(medium.log.empty());  // held by the formation window
  e.run();

  ASSERT_EQ(medium.log.size(), 1u);
  const net::Frame& out = medium.log[0].frame;
  EXPECT_EQ(medium.log[0].at, sim::msec(2));  // deadline, not sooner
  EXPECT_EQ(out.dst, NodeId(1));
  // Billing: batch header + a descriptor per enclosure on top of the
  // enclosed payloads.
  EXPECT_EQ(out.payload_bytes,
            kBatchHeaderBytes + 3 * kEnclosureHeaderBytes + 10 + 20 + 30);
  // The batch inherits the first *traced* enclosure's identity.
  EXPECT_EQ(out.trace_id, 42u);
  const auto& batch = out.as<Batch>();
  ASSERT_EQ(batch.frames.size(), 3u);
  EXPECT_EQ(tag_of(batch.frames[0]), "a");  // submission order kept
  EXPECT_EQ(tag_of(batch.frames[1]), "b");
  EXPECT_EQ(tag_of(batch.frames[2]), "c");
  EXPECT_EQ(batch.frames[2].trace_id, 43u);  // per-enclosure TraceIds
  EXPECT_EQ(packer.batches_sent(), 1u);
  EXPECT_EQ(packer.enclosures_batched(), 3u);
  EXPECT_EQ(packer.singles_sent(), 0u);
}

TEST(FormPacker, ByteBudgetClosesTheBatchBeforeTheDeadline) {
  sim::Engine e;
  RecordingMedium medium(e);
  // Budget fits two wrapped 20-byte frames (8 + 2*24 = 56 <= 64) but
  // not three (80 > 64).
  Packer packer(e, medium, NodeId(0), Params{sim::msec(5), 64});

  packer.submit(frame_to(NodeId(0), NodeId(1), 20, "a"));
  packer.submit(frame_to(NodeId(0), NodeId(1), 20, "b"));
  ASSERT_TRUE(medium.log.empty());
  packer.submit(frame_to(NodeId(0), NodeId(1), 20, "c"));
  // The third frame would blow the budget: the pending pair flushes
  // immediately (t == 0), "c" starts a fresh window.
  ASSERT_EQ(medium.log.size(), 1u);
  EXPECT_EQ(medium.log[0].at, sim::Time(0));
  const auto& batch = medium.log[0].frame.as<Batch>();
  ASSERT_EQ(batch.frames.size(), 2u);
  EXPECT_EQ(tag_of(batch.frames[0]), "a");
  EXPECT_EQ(tag_of(batch.frames[1]), "b");

  e.run();  // "c" rides its own deadline out, alone -> unwrapped
  ASSERT_EQ(medium.log.size(), 2u);
  EXPECT_EQ(medium.log[1].at, sim::msec(5));
  EXPECT_EQ(tag_of(medium.log[1].frame), "c");
  EXPECT_EQ(packer.batches_sent(), 1u);
  EXPECT_EQ(packer.enclosures_batched(), 2u);
  EXPECT_EQ(packer.singles_sent(), 1u);
}

TEST(FormPacker, LoneEnclosureGoesOutUnwrapped) {
  sim::Engine e;
  RecordingMedium medium(e);
  Packer packer(e, medium, NodeId(0), Params{sim::msec(3), 1024});

  packer.submit(frame_to(NodeId(0), NodeId(1), 64, "solo", 9));
  e.run();

  // Sparse traffic pays the window but never the batch framing: the
  // wire sees the original frame, bytes and trace untouched.
  ASSERT_EQ(medium.log.size(), 1u);
  EXPECT_EQ(medium.log[0].at, sim::msec(3));
  EXPECT_EQ(tag_of(medium.log[0].frame), "solo");
  EXPECT_EQ(medium.log[0].frame.payload_bytes, 64u);
  EXPECT_EQ(medium.log[0].frame.trace_id, 9u);
  EXPECT_EQ(packer.batches_sent(), 0u);
  EXPECT_EQ(packer.singles_sent(), 1u);
}

TEST(FormPacker, BroadcastFlushesEveryQueueFirst) {
  sim::Engine e;
  RecordingMedium medium(e);
  Packer packer(e, medium, NodeId(0), Params{sim::msec(5), 1024});

  packer.submit(frame_to(NodeId(0), NodeId(1), 16, "u1"));
  packer.submit(frame_to(NodeId(0), NodeId(2), 16, "u2"));
  packer.submit_broadcast(frame_to(NodeId(0), NodeId(0), 16, "bcast"));

  // The broadcast reaches every destination, so it must not overtake
  // any queued unicast: both queues flush (lone frames -> unwrapped)
  // before the broadcast leaves, all at t == 0.
  ASSERT_EQ(medium.log.size(), 3u);
  EXPECT_FALSE(medium.log[0].was_broadcast);
  EXPECT_FALSE(medium.log[1].was_broadcast);
  EXPECT_TRUE(medium.log[2].was_broadcast);
  EXPECT_EQ(tag_of(medium.log[2].frame), "bcast");
  e.run();
  EXPECT_EQ(medium.log.size(), 3u);  // no stale deadline fires later
}

TEST(FormPacker, FlushHintDrainsOnlyTheNamedDestination) {
  sim::Engine e;
  RecordingMedium medium(e);
  Packer packer(e, medium, NodeId(0), Params{sim::msec(4), 1024});

  packer.submit(frame_to(NodeId(0), NodeId(1), 16, "a"));
  packer.submit(frame_to(NodeId(0), NodeId(2), 16, "b"));
  packer.flush(NodeId(1));
  ASSERT_EQ(medium.log.size(), 1u);
  EXPECT_EQ(tag_of(medium.log[0].frame), "a");

  e.run();  // destination 2 still rides its deadline
  ASSERT_EQ(medium.log.size(), 2u);
  EXPECT_EQ(tag_of(medium.log[1].frame), "b");
  EXPECT_EQ(medium.log[1].at, sim::msec(4));
}

TEST(FormPacker, DestructionCancelsDeadlinesWithoutFlushing) {
  sim::Engine e;
  RecordingMedium medium(e);
  {
    Packer packer(e, medium, NodeId(0), Params{sim::msec(2), 1024});
    packer.submit(frame_to(NodeId(0), NodeId(1), 16, "doomed"));
  }
  e.run();
  // Pending enclosures die with the packer, exactly like parked frames
  // at teardown; no deadline callback outlives it.
  EXPECT_TRUE(medium.log.empty());
}

}  // namespace
}  // namespace form
