// Coordinated-omission regression (the reason load:: has an open loop).
//
// The server stalls for 400 ms in the middle of the measure window.
// During the stall an open-loop generator keeps scheduling arrivals and
// charges each one from its *scheduled* time, so the stall dominates
// the recorded tail.  A closed-loop generator stops issuing while its
// one outstanding call is stuck — it records just one long sample per
// client and the (coordinated) generator slowdown hides the rest, so
// its p99 stays near the uncontended latency.  Same scenario, same
// fault; only the accounting differs.
#include <gtest/gtest.h>

#include "load/load.hpp"

namespace load {
namespace {

Scenario stalled_scenario() {
  Scenario sc;
  sc.clients = 4;
  sc.warmup = sim::msec(200);
  sc.measure = sim::sec(2);
  sc.drain = sim::sec(1);
  sc.stall_at = sc.warmup + sim::msec(200);  // mid-window
  sc.stall_for = sim::msec(400);
  sc.max_backlog_per_client = 0;  // never shed: the point is the queue
  return sc;
}

TEST(OmissionTest, OpenLoopTailReflectsTheStall) {
  Scenario sc = stalled_scenario();
  sc.arrival = Arrival::kOpenDeterministic;
  sc.offered_rate = 100.0;
  const Report r = run_scenario(Substrate::kChrysalis, sc);
  ASSERT_GT(r.samples, 100);
  EXPECT_EQ(r.errors, 0);
  // ~40 of ~200 in-window arrivals land during the 400 ms stall and
  // queue behind it: the p99 is stall-sized, not service-sized.
  EXPECT_GT(r.p99_ms, 100.0);
  EXPECT_GT(r.max_ms, 300.0);
}

TEST(OmissionTest, NaiveClosedLoopHidesTheStall) {
  Scenario sc = stalled_scenario();
  sc.arrival = Arrival::kClosed;
  sc.think = sim::msec(10);
  const Report r = run_scenario(Substrate::kChrysalis, sc);
  ASSERT_GT(r.samples, 100);
  EXPECT_EQ(r.errors, 0);
  // Each client records exactly one stall-length sample (4 of ~600):
  // under 1% of the distribution, so the p99 never sees the fault.
  EXPECT_LT(r.p99_ms, 20.0);
  EXPECT_GT(r.max_ms, 300.0);  // the stall happened — it is just omitted
}

TEST(OmissionTest, OpenLoopTailDominatesClosedLoopTail) {
  Scenario open = stalled_scenario();
  open.arrival = Arrival::kOpenDeterministic;
  open.offered_rate = 100.0;
  Scenario closed = stalled_scenario();
  closed.arrival = Arrival::kClosed;
  closed.think = sim::msec(10);
  const Report ro = run_scenario(Substrate::kChrysalis, open);
  const Report rc = run_scenario(Substrate::kChrysalis, closed);
  EXPECT_GT(ro.p99_ms, 4.0 * rc.p99_ms);
}

}  // namespace
}  // namespace load
