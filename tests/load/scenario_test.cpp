// load:: subsystem tests: scenarios run on every substrate, runs are
// deterministic, overload is detected, and the capacity search finds a
// finite knee consistent with the paper's latency ordering.
#include <gtest/gtest.h>

#include "load/load.hpp"
#include "sweep/sweep.hpp"

namespace load {
namespace {

// Short windows keep each simulated run cheap; the full-length windows
// are exercised by bench_capacity.
Scenario quick_scenario() {
  Scenario sc;
  sc.clients = 2;
  sc.warmup = sim::msec(100);
  sc.measure = sim::msec(500);
  sc.drain = sim::msec(500);
  return sc;
}

class SubstrateTest : public ::testing::TestWithParam<Substrate> {};

TEST_P(SubstrateTest, ClosedLoopRunsUnchanged) {
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kClosed;
  const Report r = run_scenario(GetParam(), sc);
  EXPECT_GT(r.samples, 0) << r.backend;
  EXPECT_EQ(r.errors, 0) << r.backend;
  EXPECT_EQ(r.dropped, 0) << r.backend;
  EXPECT_EQ(r.completed, r.samples);
  EXPECT_GT(r.p50_ms, 0.0);
  EXPECT_LE(r.p50_ms, r.p99_ms);
}

TEST_P(SubstrateTest, OpenLoopRunsUnchanged) {
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenPoisson;
  sc.offered_rate = 20.0;  // well under every backend's capacity
  const Report r = run_scenario(GetParam(), sc);
  EXPECT_GT(r.samples, 0) << r.backend;
  EXPECT_EQ(r.errors, 0) << r.backend;
  EXPECT_EQ(r.completed, r.scheduled) << r.backend;
  EXPECT_FALSE(r.backlog_capped);
}

TEST_P(SubstrateTest, OpenLoopIsDeterministic) {
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenPoisson;
  sc.offered_rate = 30.0;
  sc.seed = 77;
  Runner first(GetParam(), sc);
  Runner second(GetParam(), sc);
  const Report a = first.run();
  const Report b = second.run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(first.engine().now(), second.engine().now());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SubstrateTest,
                         ::testing::Values(Substrate::kCharlotte,
                                           Substrate::kSoda,
                                           Substrate::kChrysalis),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(LoadTest, PipelineTopologyCompletes) {
  Scenario sc = quick_scenario();
  sc.topology = Topology::kPipeline;
  sc.servers = 3;  // client -> stage0 -> stage1 -> stage2
  sc.arrival = Arrival::kClosed;
  const Report r = run_scenario(Substrate::kChrysalis, sc);
  EXPECT_GT(r.samples, 0);
  EXPECT_EQ(r.errors, 0);
  // Three hops cost at least 3x the single-hop floor (~2.4 ms).
  EXPECT_GT(r.p50_ms, 6.0);
}

TEST(LoadTest, OverloadSaturatesAndCaps) {
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenDeterministic;
  sc.offered_rate = 5000.0;  // far beyond a single-threaded server
  sc.max_backlog_per_client = 64;
  const Report r = run_scenario(Substrate::kChrysalis, sc);
  EXPECT_TRUE(r.backlog_capped);
  EXPECT_GT(r.dropped, 0);
  EXPECT_FALSE(r.sustainable(/*p99_bound_ms=*/1e9, /*backlog_slack=*/1 << 20));
  // Delivered throughput is pinned near capacity, far below offered.
  EXPECT_LT(r.throughput, sc.offered_rate / 2.0);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(LoadTest, UnboundedBacklogGrowsUnderOverload) {
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenDeterministic;
  sc.offered_rate = 2000.0;
  sc.max_backlog_per_client = 0;  // unbounded: growth, not drops
  const Report r = run_scenario(Substrate::kChrysalis, sc);
  EXPECT_FALSE(r.backlog_capped);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_GT(r.backlog_end, r.backlog_start + 100);
  EXPECT_FALSE(r.sustainable(/*p99_bound_ms=*/1e9, /*backlog_slack=*/8));
}

TEST(LoadTest, SodaSustainsMoreThanCharlotte) {
  // Offered far beyond Charlotte's capacity (~18/s) but near SODA's:
  // delivered throughput separates the kernels the way the paper's
  // latency tables do.
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenDeterministic;
  sc.offered_rate = 200.0;
  sc.max_backlog_per_client = 256;
  const Report charlotte = run_scenario(Substrate::kCharlotte, sc);
  const Report soda = run_scenario(Substrate::kSoda, sc);
  EXPECT_GT(soda.throughput, charlotte.throughput);
}

TEST(LoadTest, CapacitySearchFindsFiniteKnee) {
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenPoisson;
  CapacityParams p;
  p.rate_lo = 8.0;
  p.rate_hi = 4096.0;
  p.refine_iters = 2;
  const CapacityResult cap = find_capacity(Substrate::kChrysalis, sc, p);
  EXPECT_GT(cap.peak_rate, p.rate_lo);
  EXPECT_LT(cap.peak_rate, p.rate_hi);
  EXPECT_GT(cap.peak_throughput, 0.0);
  EXPECT_GT(cap.p99_bound_ms, 0.0);
  // The curve brackets the knee: sustainable below, unsustainable above.
  bool saw_unsustainable = false;
  for (const auto& pt : cap.curve) {
    if (pt.rate <= cap.peak_rate) {
      EXPECT_TRUE(pt.sustainable) << "rate " << pt.rate;
    }
    saw_unsustainable |= !pt.sustainable;
  }
  EXPECT_TRUE(saw_unsustainable);
}

TEST(LoadTest, ParallelCapacitySearchIsBitIdentical) {
  // CapacityParams::pool probes the geometric ladder as one parallel
  // wave and replays the sequential walk over the precomputed reports;
  // the result — probe set, verdicts, knee, curve order — must match
  // the sequential search exactly, point for point.
  Scenario sc = quick_scenario();
  sc.arrival = Arrival::kOpenPoisson;
  CapacityParams p;
  p.rate_lo = 8.0;
  p.rate_hi = 4096.0;
  p.refine_iters = 2;
  const CapacityResult seq = find_capacity(Substrate::kChrysalis, sc, p);
  sweep::ThreadPool pool(4);
  p.pool = &pool;
  const CapacityResult par = find_capacity(Substrate::kChrysalis, sc, p);

  EXPECT_EQ(par.peak_rate, seq.peak_rate);
  EXPECT_EQ(par.peak_throughput, seq.peak_throughput);
  EXPECT_EQ(par.p99_bound_ms, seq.p99_bound_ms);
  ASSERT_EQ(par.curve.size(), seq.curve.size());
  for (std::size_t i = 0; i < seq.curve.size(); ++i) {
    EXPECT_EQ(par.curve[i].rate, seq.curve[i].rate) << "point " << i;
    EXPECT_EQ(par.curve[i].sustainable, seq.curve[i].sustainable)
        << "point " << i;
    EXPECT_EQ(par.curve[i].report.throughput, seq.curve[i].report.throughput)
        << "point " << i;
    EXPECT_EQ(par.curve[i].report.p99_ms, seq.curve[i].report.p99_ms)
        << "point " << i;
  }
}

}  // namespace
}  // namespace load
