// End-to-end tests: LYNX runtime over the Charlotte backend.
//
// Includes the paper's §3.2.1 unwanted-message scenarios (retry /
// forbid / allow), the figure-2 multi-enclosure protocol, and the two
// documented semantic deviations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "lynx/charlotte_backend.hpp"
#include "lynx/runtime.hpp"
#include "sim/engine.hpp"

namespace lynx {
namespace {

using net::NodeId;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& x : v) out += x + "; ";
  return out;
}

struct World {
  sim::Engine engine;
  charlotte::Cluster cluster{engine, 4};
  Process server{engine, "server", make_charlotte_backend(cluster, NodeId(0))};
  Process client{engine, "client", make_charlotte_backend(cluster, NodeId(1))};
  LinkHandle server_end;
  LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("connect", wire(this));
    engine.run();
    RELYNX_ASSERT(server_end.valid() && client_end.valid());
  }

  static sim::Task<> wire(World* w) {
    auto [se, ce] = co_await CharlotteBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }

  [[nodiscard]] const CharlotteBackend::Stats& server_stats() {
    return dynamic_cast<CharlotteBackend&>(server.backend()).stats();
  }
  [[nodiscard]] const CharlotteBackend::Stats& client_stats() {
    return dynamic_cast<CharlotteBackend&>(client.backend()).stats();
  }
};

sim::Task<> echo_server_thread(ThreadCtx& ctx, LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    Incoming in = co_await ctx.receive();
    Message rep;
    rep.args = in.msg.args;
    co_await ctx.reply(in, std::move(rep));
  }
}

sim::Task<> echo_client_thread(ThreadCtx& ctx, LinkHandle link, int n,
                               std::vector<std::string>* log) {
  for (int i = 0; i < n; ++i) {
    Message req = make_message("echo", {std::string("m") + std::to_string(i)});
    Message rep = co_await ctx.call(link, std::move(req));
    log->push_back(std::get<std::string>(rep.args.at(0)));
  }
}

TEST(LynxCharlotte, EchoRpcRoundTrips) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return echo_server_thread(ctx, w.server_end, 3);
  });
  w.client.spawn_thread("drive", [&](ThreadCtx& ctx) {
    return echo_client_thread(ctx, w.client_end, 3, &log);
  });
  w.engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"m0", "m1", "m2"}))
      << join(w.server.thread_failures()) << join(w.client.thread_failures());
  EXPECT_TRUE(w.engine.process_failures().empty());
  // simple case (figure 2 top): exactly 1 request + 1 reply per op,
  // no retry/forbid/goahead traffic
  EXPECT_EQ(w.client_stats().requests_sent, 3u);
  EXPECT_EQ(w.server_stats().replies_sent, 3u);
  EXPECT_EQ(w.client_stats().requests_returned, 0u);
  EXPECT_EQ(w.server_stats().forbids_sent, 0u);
  EXPECT_EQ(w.server_stats().retries_sent, 0u);
}

TEST(LynxCharlotte, LatencyIsTensOfMilliseconds) {
  // §3.3: a simple remote operation costs ~57 ms on Charlotte.  The
  // exact number is calibrated by the benches; here just pin the band.
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return echo_server_thread(ctx, w.server_end, 1);
  });
  w.client.spawn_thread("drive", [&](ThreadCtx& ctx) {
    return echo_client_thread(ctx, w.client_end, 1, &log);
  });
  const sim::Time before = w.engine.now();
  w.engine.run();
  const double ms = sim::to_msec(w.engine.now() - before);
  EXPECT_GT(ms, 20.0);
  EXPECT_LT(ms, 200.0);
}

// ---- single enclosure move -------------------------------------------------

sim::Task<> single_mover(ThreadCtx& ctx, LinkHandle via,
                         std::vector<std::string>* log) {
  LocalLinkPair pair = co_await ctx.new_link();
  Message req = make_message("take", {pair.end2});
  Message rep = co_await ctx.call(via, std::move(req));
  (void)rep;
  Message probe = make_message("probe", {std::int64_t(7)});
  Message r = co_await ctx.call(pair.end1, std::move(probe));
  log->push_back("probe:" +
                 std::to_string(std::get<std::int64_t>(r.args.at(0))));
}

sim::Task<> single_taker(ThreadCtx& ctx, LinkHandle via,
                         std::vector<std::string>* log) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  CO_CHECK_EQ(in.msg.count_links(), 1u);
  LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
  Message empty;
  co_await ctx.reply(in, std::move(empty));
  ctx.enable_requests(got);
  Incoming probe = co_await ctx.receive();
  log->push_back("taker-got:" + probe.msg.op);
  Message rep;
  rep.args = probe.msg.args;
  co_await ctx.reply(probe, std::move(rep));
}

TEST(LynxCharlotte, MovesSingleLinkAcrossProcesses) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("take", [&](ThreadCtx& ctx) {
    return single_taker(ctx, w.server_end, &log);
  });
  w.client.spawn_thread("move", [&](ThreadCtx& ctx) {
    return single_mover(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u) << join(w.server.thread_failures())
                            << join(w.client.thread_failures());
  EXPECT_EQ(log[0], "taker-got:probe");
  EXPECT_EQ(log[1], "probe:7");
  // one enclosure: no goahead, no enc packets (figure 2 simple case)
  EXPECT_EQ(w.server_stats().goaheads_sent, 0u);
  EXPECT_EQ(w.client_stats().enc_packets_sent, 0u);
}

// ---- figure 2: multiple enclosures ------------------------------------------

sim::Task<> multi_mover(ThreadCtx& ctx, LinkHandle via, int n,
                        std::vector<std::string>* log) {
  std::vector<LinkHandle> keep;
  Message req = make_message("take", {});
  for (int i = 0; i < n; ++i) {
    LocalLinkPair pair = co_await ctx.new_link();
    keep.push_back(pair.end1);
    req.args.emplace_back(pair.end2);
  }
  Message rep = co_await ctx.call(via, std::move(req));
  (void)rep;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    Message probe = make_message("probe", {static_cast<std::int64_t>(i)});
    Message r = co_await ctx.call(keep[i], std::move(probe));
    log->push_back("ok" + std::to_string(std::get<std::int64_t>(r.args.at(0))));
  }
}

sim::Task<> multi_taker(ThreadCtx& ctx, LinkHandle via, int n,
                        std::vector<std::string>* log) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  CO_CHECK_EQ(static_cast<int>(in.msg.count_links()), n);
  std::vector<LinkHandle> got;
  for (const Value& v : in.msg.args) got.push_back(std::get<LinkHandle>(v));
  Message empty;
  co_await ctx.reply(in, std::move(empty));
  log->push_back("took");
  for (LinkHandle h : got) ctx.enable_requests(h);
  for (int i = 0; i < n; ++i) {
    Incoming probe = co_await ctx.receive();
    Message rep;
    rep.args = probe.msg.args;
    co_await ctx.reply(probe, std::move(rep));
  }
}

TEST(LynxCharlotte, Figure2MultiEnclosureRequest) {
  World w;
  w.boot();
  std::vector<std::string> log;
  constexpr int kLinks = 4;
  w.server.spawn_thread("take", [&](ThreadCtx& ctx) {
    return multi_taker(ctx, w.server_end, kLinks, &log);
  });
  w.client.spawn_thread("move", [&](ThreadCtx& ctx) {
    return multi_mover(ctx, w.client_end, kLinks, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u + kLinks)
      << join(w.server.thread_failures()) << join(w.client.thread_failures());
  // figure 2 bottom: first packet carries enclosure 1; the receiver
  // sends GOAHEAD; the remaining n-1 ride in ENC packets.
  EXPECT_EQ(w.server_stats().goaheads_sent, 1u);
  EXPECT_EQ(w.client_stats().enc_packets_sent,
            static_cast<std::uint64_t>(kLinks - 1));
  EXPECT_EQ(w.client_stats().requests_returned, 0u);
}

// ---- §3.2.1: bidirectional requests force FORBID ---------------------------

// A requests an operation on L and awaits the reply; B (in another
// coroutine, before the first one replies) requests an operation on L in
// the reverse direction — "the coroutine mechanism ... makes such a
// scenario entirely plausible".  A's Receive is posted (for the reply it
// wants), so A inadvertently receives B's request and must bounce it
// with FORBID; once A's own call completes and A opens its request
// queue, it sends ALLOW and B's request goes through.
sim::Task<> forbid_b_server(ThreadCtx& ctx, LinkHandle link,
                            std::vector<std::string>* log) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();  // A's "forward"
  co_await ctx.delay(sim::msec(150));    // window for the counter-request
  Message rep;
  co_await ctx.reply(in, std::move(rep));
  log->push_back("b-served-forward");
}

sim::Task<> forbid_b_counter(ThreadCtx& ctx, LinkHandle link,
                             std::vector<std::string>* log) {
  co_await ctx.delay(sim::msec(80));  // after A's request is in flight
  Message counter = make_message("reverse", {});
  Message rep = co_await ctx.call(link, std::move(counter));
  (void)rep;
  log->push_back("b-counter-done");
}

sim::Task<> forbid_client_a(ThreadCtx& ctx, LinkHandle link,
                            std::vector<std::string>* log) {
  // Request queue CLOSED during the call: B's counter-request is
  // unwanted when it arrives.
  Message req = make_message("forward", {});
  Message rep = co_await ctx.call(link, std::move(req));
  (void)rep;
  log->push_back("a-call-done");
  // Now willing: serve the counter-request.
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  CO_CHECK_EQ(in.msg.op, "reverse");
  Message r;
  co_await ctx.reply(in, std::move(r));
  log->push_back("a-served-reverse");
}

TEST(LynxCharlotte, BidirectionalRequestsTriggerForbidAllow) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("B-serve", [&](ThreadCtx& ctx) {
    return forbid_b_server(ctx, w.server_end, &log);
  });
  w.server.spawn_thread("B-counter", [&](ThreadCtx& ctx) {
    return forbid_b_counter(ctx, w.server_end, &log);
  });
  w.client.spawn_thread("A", [&](ThreadCtx& ctx) {
    return forbid_client_a(ctx, w.client_end, &log);
  });
  w.engine.run();
  EXPECT_EQ(log.size(), 4u) << join(w.server.thread_failures())
                            << join(w.client.thread_failures());
  // A received B's request unintentionally and bounced it.
  EXPECT_GE(w.client_stats().unwanted_received, 1u);
  EXPECT_GE(w.client_stats().forbids_sent, 1u);
  EXPECT_GE(w.client_stats().allows_sent, 1u);
  EXPECT_GE(w.server_stats().requests_returned, 1u);
}

// ---- deviation: replier is NOT told about an aborted caller ----------------

sim::Task<> slow_replier(ThreadCtx& ctx, LinkHandle link,
                         std::vector<std::string>* log) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  co_await ctx.delay(sim::msec(200));
  try {
    Message rep;
    co_await ctx.reply(in, std::move(rep));
    log->push_back("reply-sent-without-exception");
  } catch (const LynxError& e) {
    log->push_back(std::string("replier-caught:") + to_string(e.kind()));
  }
  // serve the caller's second (post-abort) call normally
  Incoming in2 = co_await ctx.receive();
  Message rep2;
  co_await ctx.reply(in2, std::move(rep2));
}

sim::Task<> aborting_caller(ThreadCtx& ctx, LinkHandle link,
                            std::vector<std::string>* log) {
  try {
    Message req = make_message("slow", {});
    (void)co_await ctx.call(link, std::move(req));
    log->push_back("unexpected-success");
  } catch (const LynxError& e) {
    log->push_back(std::string("caller-caught:") + to_string(e.kind()));
  }
  // The caller coroutine died, but the process lives on and makes a
  // second call on the same link.  The reply queue reopens, the stale
  // reply to the aborted call arrives first, and the run-time silently
  // discards it — the server never learns (the Charlotte deviation).
  co_await ctx.delay(sim::msec(400));
  Message again = make_message("slow", {});
  Message rep = co_await ctx.call(link, std::move(again));
  (void)rep;
  log->push_back("second-call-ok");
}

TEST(LynxCharlotte, ReplyToAbortedCallerSucceedsSilently) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("slow", [&](ThreadCtx& ctx) {
    return slow_replier(ctx, w.server_end, &log);
  });
  ThreadId caller = w.client.spawn_thread("caller", [&](ThreadCtx& ctx) {
    return aborting_caller(ctx, w.client_end, &log);
  });
  w.engine.schedule(sim::msec(100), [&, caller] {
    w.client.abort_thread(caller);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 3u) << join(w.server.thread_failures())
                            << join(w.client.thread_failures());
  EXPECT_EQ(log[0], "caller-caught:aborted");
  // THE CHARLOTTE DEVIATION: the server does NOT feel an exception.
  EXPECT_EQ(log[1], "reply-sent-without-exception");
  EXPECT_EQ(log[2], "second-call-ok");
}

// ---- destroy / termination ---------------------------------------------------

sim::Task<> call_expect_destroyed(ThreadCtx& ctx, LinkHandle link,
                                  std::vector<std::string>* log) {
  try {
    Message req = make_message("x", {});
    (void)co_await ctx.call(link, std::move(req));
    log->push_back("unexpected-success");
  } catch (const LynxError& e) {
    log->push_back(std::string("caught:") + to_string(e.kind()));
  }
}

TEST(LynxCharlotte, PeerTerminationRaisesException) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("quit", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c) -> sim::Task<> {
      co_await c.delay(sim::msec(5));
    }(ctx);
  });
  w.client.spawn_thread("victim", [&](ThreadCtx& ctx) {
    return call_expect_destroyed(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "caught:link-destroyed");
}

TEST(LynxCharlotte, DeterministicAcrossRuns) {
  auto run = [] {
    World w;
    w.boot();
    std::vector<std::string> log;
    w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
      return echo_server_thread(ctx, w.server_end, 5);
    });
    w.client.spawn_thread("drive", [&](ThreadCtx& ctx) {
      return echo_client_thread(ctx, w.client_end, 5, &log);
    });
    w.engine.run();
    return std::pair(w.engine.now(), log);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace lynx
