// End-to-end tests: LYNX runtime over the Chrysalis backend.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/runtime.hpp"
#include "sim/engine.hpp"

namespace lynx {
namespace {

using net::NodeId;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& x : v) out += x + "; ";
  return out;
}

struct World {
  sim::Engine engine;
  chrysalis::Kernel kernel{engine};
  Process server{engine, "server",
                 make_chrysalis_backend(kernel, NodeId(0))};
  Process client{engine, "client",
                 make_chrysalis_backend(kernel, NodeId(1))};
  LinkHandle server_end;
  LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("connect", wire(this));
    engine.run();
    RELYNX_ASSERT(server_end.valid() && client_end.valid());
  }

  static sim::Task<> wire(World* w) {
    auto [se, ce] = co_await ChrysalisBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

// ---- simple RPC ----------------------------------------------------------

sim::Task<> echo_server_thread(ThreadCtx& ctx, LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    Incoming in = co_await ctx.receive();
    CO_CHECK_EQ(in.msg.op, "echo");
    Message rep;
    rep.args = in.msg.args;  // echo the params back
    co_await ctx.reply(in, rep);
  }
}

sim::Task<> echo_client_thread(ThreadCtx& ctx, LinkHandle link, int n,
                               std::vector<std::string>* log) {
  for (int i = 0; i < n; ++i) {
    Message req = make_message(
        "echo", {std::int64_t(i), std::string("hello-") + std::to_string(i)});
    Message rep = co_await ctx.call(link, std::move(req));
    CO_CHECK_EQ(rep.args.size(), 2u);
    CO_CHECK_EQ(std::get<std::int64_t>(rep.args[0]), i);
    log->push_back(std::get<std::string>(rep.args[1]));
  }
}

TEST(LynxChrysalis, EchoRpcRoundTrips) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return echo_server_thread(ctx, w.server_end, 3);
  });
  w.client.spawn_thread("drive", [&](ThreadCtx& ctx) {
    return echo_client_thread(ctx, w.client_end, 3, &log);
  });
  w.engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"hello-0", "hello-1", "hello-2"}));
  EXPECT_TRUE(w.engine.process_failures().empty());
  EXPECT_TRUE(w.server.thread_failures().empty());
  EXPECT_TRUE(w.client.thread_failures().empty());
  EXPECT_GT(w.engine.now(), 0);
}

// ---- moving links (single and multiple enclosures) ------------------------

sim::Task<> mover_thread(ThreadCtx& ctx, LinkHandle via, int n_new_links,
                         std::vector<std::string>* log) {
  // Make n fresh links, keep end1s, send all end2s in ONE message.
  std::vector<LinkHandle> keep;
  Message req = make_message("take", {});
  for (int i = 0; i < n_new_links; ++i) {
    LocalLinkPair pair = co_await ctx.new_link();
    keep.push_back(pair.end1);
    req.args.emplace_back(pair.end2);
  }
  Message rep = co_await ctx.call(via, std::move(req));
  CO_CHECK_EQ(rep.op, "take");
  // Now exercise each moved link with an RPC served by the taker.
  for (std::size_t i = 0; i < keep.size(); ++i) {
    Message probe =
        make_message("probe", {static_cast<std::int64_t>(i)});
    Message r = co_await ctx.call(keep[i], std::move(probe));
    log->push_back("probe-ok-" +
                   std::to_string(std::get<std::int64_t>(r.args.at(0))));
  }
}

sim::Task<> taker_thread(ThreadCtx& ctx, LinkHandle via, int n_expected,
                         std::vector<std::string>* log) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  CO_CHECK_EQ(in.msg.op, "take");
  CO_CHECK_EQ(static_cast<int>(in.msg.count_links()), n_expected);
  std::vector<LinkHandle> got;
  for (const Value& v : in.msg.args) got.push_back(std::get<LinkHandle>(v));
  Message empty;
  co_await ctx.reply(in, std::move(empty));
  log->push_back("took-" + std::to_string(got.size()));
  for (LinkHandle h : got) ctx.enable_requests(h);
  for (int i = 0; i < n_expected; ++i) {
    Incoming probe = co_await ctx.receive();
    CO_CHECK_EQ(probe.msg.op, "probe");
    Message rep;
    rep.args = probe.msg.args;
    co_await ctx.reply(probe, std::move(rep));
  }
}

TEST(LynxChrysalis, MovesMultipleLinksInOneMessage) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("take", [&](ThreadCtx& ctx) {
    return taker_thread(ctx, w.server_end, 3, &log);
  });
  w.client.spawn_thread("move", [&](ThreadCtx& ctx) {
    return mover_thread(ctx, w.client_end, 3, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 4u) << "server: " << join(w.server.thread_failures())
                            << " client: "
                            << join(w.client.thread_failures())
                            << " engine: "
                            << join(w.engine.process_failures());
  EXPECT_EQ(log[0], "took-3");
  EXPECT_EQ(log[1], "probe-ok-0");
  EXPECT_EQ(log[2], "probe-ok-1");
  EXPECT_EQ(log[3], "probe-ok-2");
  EXPECT_TRUE(w.server.thread_failures().empty());
  EXPECT_TRUE(w.client.thread_failures().empty());
}

// ---- screening: closed request queues park messages ------------------------

sim::Task<> lazy_server_thread(ThreadCtx& ctx, LinkHandle link,
                               std::vector<std::string>* log) {
  // Do NOT open the queue yet; the request must wait in the link buffer.
  co_await ctx.delay(sim::msec(50));
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  log->push_back("served-late:" + in.msg.op);
  Message empty;
  co_await ctx.reply(in, std::move(empty));
}

TEST(LynxChrysalis, ClosedQueueParksRequestUntilOpened) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("lazy", [&](ThreadCtx& ctx) {
    return lazy_server_thread(ctx, w.server_end, &log);
  });
  w.client.spawn_thread("eager", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      Message req = make_message("park-me", {});
      (void)co_await c.call(l, std::move(req));
      lg->push_back("client-returned");
    }(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "served-late:park-me");
  EXPECT_EQ(log[1], "client-returned");
}

// ---- destruction ------------------------------------------------------------

sim::Task<> destroyer_thread(ThreadCtx& ctx, LinkHandle link) {
  co_await ctx.delay(sim::msec(10));
  co_await ctx.destroy(link);
}

sim::Task<> victim_call_thread(ThreadCtx& ctx, LinkHandle link,
                               std::vector<std::string>* log,
                               sim::Duration linger = 0) {
  try {
    Message req = make_message("doomed", {});
    (void)co_await ctx.call(link, std::move(req));
    log->push_back("unexpected-success");
  } catch (const LynxError& e) {
    log->push_back(std::string("caught:") + to_string(e.kind()));
  }
  // keep the process alive (so termination does not race the scenario)
  if (linger > 0) co_await ctx.engine().sleep(linger);
}

TEST(LynxChrysalis, DestroyRaisesExceptionAtPeer) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("destroyer", [&](ThreadCtx& ctx) {
    return destroyer_thread(ctx, w.server_end);
  });
  w.client.spawn_thread("victim", [&](ThreadCtx& ctx) {
    return victim_call_thread(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "caught:link-destroyed");
}

// ---- termination destroys links ---------------------------------------------

TEST(LynxChrysalis, ProcessEndDestroysLinks) {
  World w;
  w.boot();
  std::vector<std::string> log;
  // The server thread returns immediately: the process terminates and
  // must destroy its links, which the client observes as an exception.
  w.server.spawn_thread("quit", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c) -> sim::Task<> {
      co_await c.delay(sim::msec(5));
    }(ctx);
  });
  w.client.spawn_thread("victim", [&](ThreadCtx& ctx) {
    return victim_call_thread(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "caught:link-destroyed");
  EXPECT_TRUE(w.server.terminated());
}

// ---- reply to aborted caller is DETECTED on Chrysalis (capability 4) --------

sim::Task<> slow_replier_thread(ThreadCtx& ctx, LinkHandle link,
                                std::vector<std::string>* log) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  co_await ctx.delay(sim::msec(40));  // caller aborts during this window
  try {
    Message empty;
  co_await ctx.reply(in, std::move(empty));
    log->push_back("reply-sent");
  } catch (const LynxError& e) {
    log->push_back(std::string("replier-caught:") + to_string(e.kind()));
  }
}

TEST(LynxChrysalis, ReplierFeelsExceptionWhenCallerAborted) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("slow", [&](ThreadCtx& ctx) {
    return slow_replier_thread(ctx, w.server_end, &log);
  });
  ThreadId caller = w.client.spawn_thread("caller", [&](ThreadCtx& ctx) {
    return victim_call_thread(ctx, w.client_end, &log, sim::msec(200));
  });
  w.engine.schedule(sim::msec(20), [&, caller] {
    w.client.abort_thread(caller);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "caught:aborted");
  EXPECT_EQ(log[1], "replier-caught:reply-unwanted");
}

// ---- fairness: no queue ignored forever ---------------------------------------

sim::Task<> fair_server_thread(ThreadCtx& ctx, std::vector<LinkHandle> links,
                               int total, std::vector<int>* served_per_link) {
  for (LinkHandle l : links) ctx.enable_requests(l);
  for (int i = 0; i < total; ++i) {
    Incoming in = co_await ctx.receive();
    for (std::size_t j = 0; j < links.size(); ++j) {
      if (links[j] == in.link) ++(*served_per_link)[j];
    }
    Message empty;
  co_await ctx.reply(in, std::move(empty));
  }
}

sim::Task<> hammer_client_thread(ThreadCtx& ctx, LinkHandle link, int n) {
  for (int i = 0; i < n; ++i) {
    Message req = make_message("op", {std::int64_t(i)});
    (void)co_await ctx.call(link, std::move(req));
  }
}

TEST(LynxChrysalis, ReceiveIsFairAcrossLinks) {
  sim::Engine engine;
  chrysalis::Kernel kernel(engine);
  Process server(engine, "server", make_chrysalis_backend(kernel, NodeId(0)));
  std::vector<std::unique_ptr<Process>> clients;
  std::vector<LinkHandle> server_ends(3);
  std::vector<LinkHandle> client_ends(3);
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<Process>(
        engine, "client" + std::to_string(i),
        make_chrysalis_backend(kernel, NodeId(1 + static_cast<std::uint32_t>(i)))));
  }
  server.start();
  for (auto& c : clients) c->start();
  for (int i = 0; i < 3; ++i) {
    engine.spawn("wire", [](Process* s, Process* c, LinkHandle* se,
                            LinkHandle* ce) -> sim::Task<> {
      auto [a, b] = co_await ChrysalisBackend::connect(*s, *c);
      *se = a;
      *ce = b;
    }(&server, clients[static_cast<std::size_t>(i)].get(), &server_ends[static_cast<std::size_t>(i)],
                            &client_ends[static_cast<std::size_t>(i)]));
  }
  engine.run();

  std::vector<int> served(3, 0);
  server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return fair_server_thread(ctx, server_ends, 15, &served);
  });
  for (int i = 0; i < 3; ++i) {
    clients[static_cast<std::size_t>(i)]->spawn_thread(
        "hammer", [&, i](ThreadCtx& ctx) {
          return hammer_client_thread(ctx, client_ends[static_cast<std::size_t>(i)], 5);
        });
  }
  engine.run();
  EXPECT_EQ(served, (std::vector<int>{5, 5, 5}));
  EXPECT_TRUE(server.thread_failures().empty());
}

}  // namespace
}  // namespace lynx
