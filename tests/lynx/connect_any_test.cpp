// Error paths of the substrate-agnostic bootstrap helper.
//
// lynx::connect_any is the one place that lets substrate-blind drivers
// (tests/load, the schedule explorer) wire two processes, so its error
// surface is part of the checker's trusted base: an unknown or
// mismatched backend, a dead engine, or a terminated process must
// surface as a typed LynxError, and connecting the same pair twice must
// yield a second, fully independent link.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "lynx/charlotte_backend.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/connect.hpp"
#include "lynx/runtime.hpp"
#include "sim/engine.hpp"

namespace lynx {
namespace {

using net::NodeId;

// A backend family connect_any has never heard of.
class FakeBackend final : public Backend {
 public:
  [[nodiscard]] std::string kernel_name() const override { return "fake"; }
  [[nodiscard]] Capabilities capabilities() const override { return {}; }
  void start(Sink /*sink*/) override {}
  void shutdown() override {}
  [[nodiscard]] sim::Task<std::pair<BLink, BLink>> make_link() override {
    co_return std::pair<BLink, BLink>{};
  }
  [[nodiscard]] std::unique_ptr<PendingSend> begin_send(
      BLink /*link*/, WireMessage /*msg*/) override {
    return nullptr;
  }
  void set_interest(BLink /*link*/, bool /*want_requests*/,
                    bool /*want_replies*/) override {}
  void retract_reply_interest(BLink /*link*/) override {}
  [[nodiscard]] sim::Task<void> destroy(BLink /*link*/) override { co_return; }
  [[nodiscard]] std::uint64_t protocol_messages() const override { return 0; }
};

// Coroutine bodies are free functions (CP.51); the outcome lands in a
// log the test asserts on after engine.run().
sim::Task<> try_connect(Process* a, Process* b, std::vector<std::string>* log,
                        LinkHandle* a_end = nullptr,
                        LinkHandle* b_end = nullptr) {
  try {
    auto [ae, be] = co_await connect_any(*a, *b);
    if (a_end != nullptr) *a_end = ae;
    if (b_end != nullptr) *b_end = be;
    log->push_back("ok");
  } catch (const LynxError& e) {
    log->push_back(std::string("error:") + to_string(e.kind()));
  }
}

sim::Task<> echo_once_server(ThreadCtx& ctx, LinkHandle link) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  Message rep;
  rep.args = in.msg.args;
  co_await ctx.reply(in, std::move(rep));
}

sim::Task<> echo_once_client(ThreadCtx& ctx, LinkHandle link,
                             std::vector<std::string>* log) {
  Message req = make_message("echo", {std::string("ping")});
  Message rep = co_await ctx.call(link, std::move(req));
  log->push_back(std::get<std::string>(rep.args.at(0)));
}

TEST(ConnectAny, UnknownSubstrateTagIsInvalidLink) {
  sim::Engine engine;
  Process a(engine, "a", std::make_unique<FakeBackend>());
  Process b(engine, "b", std::make_unique<FakeBackend>());
  a.start();
  b.start();
  std::vector<std::string> log;
  engine.spawn("wire", try_connect(&a, &b, &log));
  engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "error:invalid-link");
}

TEST(ConnectAny, MismatchedSubstratesAreInvalidLink) {
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 2);
  chrysalis::Kernel kernel(engine, net::ButterflyParams{});
  Process a(engine, "a", make_charlotte_backend(cluster, NodeId(0)));
  Process b(engine, "b", make_chrysalis_backend(kernel, NodeId(1)));
  a.start();
  b.start();
  std::vector<std::string> log;
  engine.spawn("wire", try_connect(&a, &b, &log));
  engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "error:invalid-link");
  engine.shutdown();
}

TEST(ConnectAny, ProcessesOnDifferentEnginesAreInvalidLink) {
  sim::Engine engine_a;
  sim::Engine engine_b;
  charlotte::Cluster cluster_a(engine_a, 2);
  charlotte::Cluster cluster_b(engine_b, 2);
  Process a(engine_a, "a", make_charlotte_backend(cluster_a, NodeId(0)));
  Process b(engine_b, "b", make_charlotte_backend(cluster_b, NodeId(0)));
  a.start();
  b.start();
  std::vector<std::string> log;
  engine_a.spawn("wire", try_connect(&a, &b, &log));
  engine_a.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "error:invalid-link");
  engine_a.shutdown();
  engine_b.shutdown();
}

TEST(ConnectAny, ConnectAfterEngineShutdownIsLinkDestroyed) {
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 2);
  Process a(engine, "a", make_charlotte_backend(cluster, NodeId(0)));
  Process b(engine, "b", make_charlotte_backend(cluster, NodeId(1)));
  a.start();
  b.start();
  std::vector<std::string> log;
  engine.spawn("wire", try_connect(&a, &b, &log));
  engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "ok");

  engine.shutdown();
  ASSERT_TRUE(engine.is_shut_down());
  engine.spawn("late-wire", try_connect(&a, &b, &log));
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "error:link-destroyed");
}

TEST(ConnectAny, ConnectToTerminatedProcessIsLinkDestroyed) {
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 2);
  Process a(engine, "a", make_charlotte_backend(cluster, NodeId(0)));
  Process b(engine, "b", make_charlotte_backend(cluster, NodeId(1)));
  a.start();
  b.start();
  b.terminate();
  std::vector<std::string> log;
  engine.spawn("wire", try_connect(&a, &b, &log));
  engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "error:link-destroyed");
  engine.shutdown();
}

TEST(ConnectAny, DoubleConnectYieldsIndependentWorkingLinks) {
  // Re-wiring the same pair is legal: the second link is fresh, and
  // traffic on both round-trips (this is exactly what the explorer's
  // multi-channel workload leans on).
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 2);
  Process server(engine, "server", make_charlotte_backend(cluster, NodeId(0)));
  Process client(engine, "client", make_charlotte_backend(cluster, NodeId(1)));
  server.start();
  client.start();
  std::vector<std::string> wire_log;
  LinkHandle se1;
  LinkHandle ce1;
  LinkHandle se2;
  LinkHandle ce2;
  engine.spawn("wire1", try_connect(&server, &client, &wire_log, &se1, &ce1));
  engine.run();
  engine.spawn("wire2", try_connect(&server, &client, &wire_log, &se2, &ce2));
  engine.run();
  ASSERT_EQ(wire_log, (std::vector<std::string>{"ok", "ok"}));
  ASSERT_TRUE(se2.valid() && ce2.valid());
  EXPECT_NE(se1, se2);
  EXPECT_NE(ce1, ce2);

  std::vector<std::string> echo_log;
  server.spawn_thread("srv1", [se1](ThreadCtx& ctx) {
    return echo_once_server(ctx, se1);
  });
  server.spawn_thread("srv2", [se2](ThreadCtx& ctx) {
    return echo_once_server(ctx, se2);
  });
  client.spawn_thread("cli1", [ce1, &echo_log](ThreadCtx& ctx) {
    return echo_once_client(ctx, ce1, &echo_log);
  });
  client.spawn_thread("cli2", [ce2, &echo_log](ThreadCtx& ctx) {
    return echo_once_client(ctx, ce2, &echo_log);
  });
  engine.run();
  EXPECT_EQ(echo_log, (std::vector<std::string>{"ping", "ping"}));
  EXPECT_TRUE(server.thread_failures().empty());
  EXPECT_TRUE(client.thread_failures().empty());
  engine.shutdown();
}

}  // namespace
}  // namespace lynx
