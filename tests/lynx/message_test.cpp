// Unit tests for LYNX message serialization.
#include "lynx/message.hpp"

#include <gtest/gtest.h>

namespace lynx {
namespace {

TEST(MessageTest, RoundTripsAllValueTypes) {
  Message m = make_message(
      "mixed", {std::int64_t(-42), 3.25, std::string("hi"),
                Bytes{1, 2, 3, 255}, LinkHandle(7)});
  Serialized s = serialize(m);
  ASSERT_EQ(s.enclosures.size(), 1u);
  EXPECT_EQ(s.enclosures[0], LinkHandle(7));

  Message back = deserialize(s.body, {LinkHandle(99)});
  EXPECT_EQ(back.op, "mixed");
  ASSERT_EQ(back.args.size(), 5u);
  EXPECT_EQ(std::get<std::int64_t>(back.args[0]), -42);
  EXPECT_EQ(std::get<double>(back.args[1]), 3.25);
  EXPECT_EQ(std::get<std::string>(back.args[2]), "hi");
  EXPECT_EQ(std::get<Bytes>(back.args[3]), (Bytes{1, 2, 3, 255}));
  // the receiver-side enclosure handle is substituted
  EXPECT_EQ(std::get<LinkHandle>(back.args[4]), LinkHandle(99));
}

TEST(MessageTest, EmptyMessage) {
  Message m = make_message("nop", {});
  Serialized s = serialize(m);
  EXPECT_TRUE(s.enclosures.empty());
  Message back = deserialize(s.body, {});
  EXPECT_EQ(back.op, "nop");
  EXPECT_TRUE(back.args.empty());
}

TEST(MessageTest, MultipleEnclosuresKeepOrder) {
  Message m = make_message("many", {LinkHandle(1), std::int64_t(5),
                                    LinkHandle(2), LinkHandle(3)});
  EXPECT_EQ(m.count_links(), 3u);
  Serialized s = serialize(m);
  ASSERT_EQ(s.enclosures.size(), 3u);
  EXPECT_EQ(s.enclosures[0], LinkHandle(1));
  EXPECT_EQ(s.enclosures[1], LinkHandle(2));
  EXPECT_EQ(s.enclosures[2], LinkHandle(3));
  Message back =
      deserialize(s.body, {LinkHandle(10), LinkHandle(20), LinkHandle(30)});
  EXPECT_EQ(std::get<LinkHandle>(back.args[0]), LinkHandle(10));
  EXPECT_EQ(std::get<LinkHandle>(back.args[2]), LinkHandle(20));
  EXPECT_EQ(std::get<LinkHandle>(back.args[3]), LinkHandle(30));
}

TEST(MessageTest, SignatureReflectsTypes) {
  Message m = make_message("sig", {std::int64_t(1), 2.0, std::string("x")});
  auto sig = m.signature();
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_EQ(sig[0], ValueType::kInt);
  EXPECT_EQ(sig[1], ValueType::kReal);
  EXPECT_EQ(sig[2], ValueType::kString);
}

TEST(MessageTest, PayloadSizeScalesWithContent) {
  Message small = make_message("op", {Bytes(10, 0)});
  Message large = make_message("op", {Bytes(1000, 0)});
  EXPECT_EQ(serialize(large).body.size() - serialize(small).body.size(),
            990u);
}

}  // namespace
}  // namespace lynx
