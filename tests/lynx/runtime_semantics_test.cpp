// Runtime-semantics tests (backend-independent rules from paper §2.1),
// run over the Chrysalis backend for speed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/runtime.hpp"
#include "sim/engine.hpp"

namespace lynx {
namespace {

using net::NodeId;

struct World {
  sim::Engine engine;
  chrysalis::Kernel kernel{engine};
  Process server{engine, "server", make_chrysalis_backend(kernel, NodeId(0))};
  Process client{engine, "client", make_chrysalis_backend(kernel, NodeId(1))};
  LinkHandle server_end;
  LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("connect", wire(this));
    engine.run();
  }
  static sim::Task<> wire(World* w) {
    auto [se, ce] = co_await ChrysalisBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

// ---- typed operations -------------------------------------------------------

sim::Task<> bad_replier(ThreadCtx& ctx, LinkHandle link) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  // Reply op is forced to match the request: the runtime rewrites it.
  Message rep;
  rep.op = "totally-wrong";
  co_await ctx.reply(in, std::move(rep));
}

TEST(LynxSemantics, ReplyOpAlwaysAnswersTheRequest) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("bad", [&](ThreadCtx& ctx) {
    return bad_replier(ctx, w.server_end);
  });
  w.client.spawn_thread("cli", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      Message req = make_message("compute", {});
      Message rep = co_await c.call(l, std::move(req));
      lg->push_back("op:" + rep.op);
    }(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "op:compute");
}

TEST(LynxSemantics, UndeclaredOperationIsRejected) {
  World w;
  w.boot();
  w.server.declare_operation("read");
  w.server.declare_operation("write");
  std::vector<std::string> log;
  w.server.spawn_thread("srv", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l) -> sim::Task<> {
      c.enable_requests(l);
      Incoming in = co_await c.receive();  // only 'read' gets through
      CO_CHECK_EQ(in.msg.op, "read");
      Message rep;
      co_await c.reply(in, std::move(rep));
    }(ctx, w.server_end);
  });
  w.client.spawn_thread("cli", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      try {
        Message bad = make_message("format-disk", {});
        (void)co_await c.call(l, std::move(bad));
        lg->push_back("unexpected-success");
      } catch (const LynxError& e) {
        lg->push_back(std::string("rejected:") + to_string(e.kind()));
      }
      Message good = make_message("read", {});
      (void)co_await c.call(l, std::move(good));
      lg->push_back("read-ok");
    }(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "rejected:operation-rejected");
  EXPECT_EQ(log[1], "read-ok");
}

// ---- enclosure restrictions (§2.1) ------------------------------------------

TEST(LynxSemantics, CannotEncloseCarrierEnd) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.client.spawn_thread("cli", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      try {
        Message req = make_message("take", {l});  // enclose the carrier!
        (void)co_await c.call(l, std::move(req));
        lg->push_back("unexpected-success");
      } catch (const LynxError& e) {
        lg->push_back(std::string("caught:") + to_string(e.kind()));
      }
    }(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "caught:link-busy");
}

// "a process is not permitted to move a link ... on which it owes a
// reply for an already-received request"
sim::Task<> owing_server(ThreadCtx& ctx, LinkHandle front, LinkHandle other,
                         std::vector<std::string>* log) {
  ctx.enable_requests(front);
  Incoming in = co_await ctx.receive();  // we now owe a reply on `front`
  try {
    Message req = make_message("move-it", {front});
    (void)co_await ctx.call(other, std::move(req));
    log->push_back("unexpected-success");
  } catch (const LynxError& e) {
    log->push_back(std::string("caught:") + to_string(e.kind()));
  }
  Message rep;
  co_await ctx.reply(in, std::move(rep));
  log->push_back("replied");
}

TEST(LynxSemantics, CannotMoveEndWithOwedReply) {
  sim::Engine engine;
  chrysalis::Kernel kernel(engine);
  Process a(engine, "a", make_chrysalis_backend(kernel, NodeId(0)));
  Process b(engine, "b", make_chrysalis_backend(kernel, NodeId(1)));
  Process c(engine, "c", make_chrysalis_backend(kernel, NodeId(2)));
  a.start();
  b.start();
  c.start();
  LinkHandle ab_a, ab_b, ac_a, ac_c;
  engine.spawn("wire", [](Process* pa, Process* pb, Process* pc,
                          LinkHandle* o1, LinkHandle* o2, LinkHandle* o3,
                          LinkHandle* o4) -> sim::Task<> {
    auto [x1, y1] = co_await ChrysalisBackend::connect(*pa, *pb);
    *o1 = x1;
    *o2 = y1;
    auto [x2, y2] = co_await ChrysalisBackend::connect(*pa, *pc);
    *o3 = x2;
    *o4 = y2;
  }(&a, &b, &c, &ab_a, &ab_b, &ac_a, &ac_c));
  engine.run();

  std::vector<std::string> log;
  a.spawn_thread("owing", [&](ThreadCtx& ctx) {
    return owing_server(ctx, ab_a, ac_a, &log);
  });
  b.spawn_thread("caller", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      Message req = make_message("op", {});
      (void)co_await cx.call(l, std::move(req));
      lg->push_back("caller-done");
    }(ctx, ab_b, &log);
  });
  c.spawn_thread("sink", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle l) -> sim::Task<> {
      cx.enable_requests(l);
      co_await cx.delay(sim::sec(1));
    }(ctx, ac_c);
  });
  engine.run();
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[0], "caught:link-busy");
  EXPECT_EQ(log[1], "replied");
  EXPECT_EQ(log[2], "caller-done");
}

// ---- per-link call serialization ---------------------------------------------

// Two client threads call on the SAME link; stop-and-wait means the
// second call must queue behind the first — both complete, in order.
sim::Task<> numbered_caller(ThreadCtx& ctx, LinkHandle link, int id,
                            std::vector<int>* order) {
  Message req = make_message("op", {std::int64_t(id)});
  Message rep = co_await ctx.call(link, std::move(req));
  order->push_back(static_cast<int>(std::get<std::int64_t>(rep.args.at(0))));
}

TEST(LynxSemantics, CallsOnOneLinkSerialize) {
  World w;
  w.boot();
  std::vector<int> order;
  w.server.spawn_thread("srv", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l) -> sim::Task<> {
      c.enable_requests(l);
      for (int i = 0; i < 3; ++i) {
        Incoming in = co_await c.receive();
        Message rep;
        rep.args = in.msg.args;
        co_await c.reply(in, std::move(rep));
      }
    }(ctx, w.server_end);
  });
  for (int i = 0; i < 3; ++i) {
    w.client.spawn_thread("cli" + std::to_string(i), [&, i](ThreadCtx& ctx) {
      return numbered_caller(ctx, w.client_end, i, &order);
    });
  }
  w.engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(w.client.thread_failures().empty());
}

// ---- message ordering within a queue (§2.1) -----------------------------------

TEST(LynxSemantics, MessagesInOneQueueArriveInOrder) {
  World w;
  w.boot();
  std::vector<int> seen;
  w.server.spawn_thread("srv", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l, std::vector<int>* out) -> sim::Task<> {
      c.enable_requests(l);
      for (int i = 0; i < 10; ++i) {
        Incoming in = co_await c.receive();
        out->push_back(
            static_cast<int>(std::get<std::int64_t>(in.msg.args.at(0))));
        Message rep;
        co_await c.reply(in, std::move(rep));
      }
    }(ctx, w.server_end, &seen);
  });
  w.client.spawn_thread("cli", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l) -> sim::Task<> {
      for (int i = 0; i < 10; ++i) {
        Message req = make_message("op", {std::int64_t(i)});
        (void)co_await c.call(l, std::move(req));
      }
    }(ctx, w.client_end);
  });
  w.engine.run();
  std::vector<int> expect;
  for (int i = 0; i < 10; ++i) expect.push_back(i);
  EXPECT_EQ(seen, expect);
}

// ---- invalid handles ------------------------------------------------------------

TEST(LynxSemantics, InvalidHandleThrows) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.client.spawn_thread("cli", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, std::vector<std::string>* lg) -> sim::Task<> {
      try {
        Message req = make_message("x", {});
        (void)co_await c.call(LinkHandle(424242), std::move(req));
      } catch (const LynxError& e) {
        lg->push_back(std::string("call:") + to_string(e.kind()));
      }
      try {
        c.enable_requests(LinkHandle(424242));
      } catch (const LynxError& e) {
        lg->push_back(std::string("enable:") + to_string(e.kind()));
      }
    }(ctx, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "call:invalid-link");
  EXPECT_EQ(log[1], "enable:invalid-link");
}

// ---- abort while blocked in receive ---------------------------------------------

TEST(LynxSemantics, AbortWakesBlockedReceiver) {
  World w;
  w.boot();
  std::vector<std::string> log;
  ThreadId tid = w.server.spawn_thread("blocked", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      c.enable_requests(l);
      try {
        (void)co_await c.receive();
        lg->push_back("unexpected-message");
      } catch (const LynxError& e) {
        lg->push_back(std::string("caught:") + to_string(e.kind()));
      }
    }(ctx, w.server_end, &log);
  });
  w.client.spawn_thread("idle", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c) -> sim::Task<> {
      co_await c.delay(sim::msec(100));
    }(ctx);
  });
  w.engine.schedule(sim::msec(20), [&, tid] { w.server.abort_thread(tid); });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "caught:aborted");
}

}  // namespace
}  // namespace lynx
