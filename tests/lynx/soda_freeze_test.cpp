// The §4.2 absolute fallback: freeze/unfreeze search.
//
// "Perhaps the simplest [fall-back mechanism] looks like this: every
//  process advertises a freeze name.  When C discovers its hint for L is
//  bad, it posts a SODA request on the freeze name of every process
//  currently in existence..."
//
// We force the fallback: the mover's cache capacity is zero (it forgets
// and un-advertises moved names immediately) and the broadcast medium
// drops everything (discover can never succeed).  Only the freeze
// search can find the link.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "lynx/runtime.hpp"
#include "lynx/soda_backend.hpp"
#include "sim/engine.hpp"

namespace lynx {
namespace {

using net::NodeId;

struct FreezeWorldResult {
  bool served = false;
  std::uint64_t freezes = 0;
  std::uint64_t discover_failures = 0;
  std::uint64_t moved_redirects = 0;
};

FreezeWorldResult run(double broadcast_drop, bool enable_freeze) {
  sim::Engine engine;
  SodaDirectory directory;
  net::CsmaBusParams bus;
  bus.broadcast_drop_prob = broadcast_drop;
  soda::Network network(engine, 5, sim::Rng(31), bus);
  SodaBackendParams bp;
  bp.moved_cache_capacity = 0;  // forget moves instantly
  bp.discover_attempts = 2;
  bp.enable_freeze_fallback = enable_freeze;

  Process a(engine, "A", make_soda_backend(network, directory, NodeId(0), bp));
  Process b(engine, "B", make_soda_backend(network, directory, NodeId(1), bp));
  Process c(engine, "C", make_soda_backend(network, directory, NodeId(2), bp));
  a.start();
  b.start();
  c.start();

  LinkHandle ab_a, ab_b, l_a, l_c;
  engine.spawn("wire", [](Process* pa, Process* pb, Process* pc,
                          LinkHandle* o1, LinkHandle* o2, LinkHandle* o3,
                          LinkHandle* o4) -> sim::Task<> {
    auto [x1, y1] = co_await SodaBackend::connect(*pa, *pb);
    *o1 = x1;
    *o2 = y1;
    auto [x2, y2] = co_await SodaBackend::connect(*pa, *pc);
    *o3 = x2;
    *o4 = y2;
  }(&a, &b, &c, &ab_a, &ab_b, &l_a, &l_c));
  engine.run();

  // A ships its end of L to B, then forgets it (cache capacity 0).
  a.spawn_thread("ship", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle via, LinkHandle moving) -> sim::Task<> {
      Message req = make_message("take", {moving});
      (void)co_await cx.call(via, std::move(req));
      co_await cx.delay(sim::sec(20));
    }(ctx, ab_a, l_a);
  });
  static bool served_flag;
  served_flag = false;
  b.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle via) -> sim::Task<> {
      cx.enable_requests(via);
      Incoming in = co_await cx.receive();
      LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
      Message empty;
      co_await cx.reply(in, std::move(empty));
      cx.enable_requests(got);
      Incoming late = co_await cx.receive();
      served_flag = true;
      Message rep;
      co_await cx.reply(late, std::move(rep));
    }(ctx, ab_b);
  });
  c.spawn_thread("late", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle l) -> sim::Task<> {
      co_await cx.delay(sim::sec(1));  // move finishes & is forgotten
      try {
        Message req = make_message("late", {});
        (void)co_await cx.call(l, std::move(req));
      } catch (const LynxError&) {
        // without the freeze fallback the link is presumed destroyed
      }
    }(ctx, l_c);
  });
  engine.run_until(sim::sec(30));

  FreezeWorldResult r;
  r.served = served_flag;
  const auto& st = dynamic_cast<SodaBackend&>(c.backend()).stats();
  r.freezes = st.freeze_searches;
  r.discover_failures = st.discover_failures;
  const auto& sa = dynamic_cast<SodaBackend&>(a.backend()).stats();
  r.moved_redirects = sa.moved_redirects;
  return r;
}

TEST(SodaFreeze, FreezeSearchFindsFullyForgottenLink) {
  // broadcast 100% lossy: discover can never work; cache is disabled;
  // only the freeze search can locate the moved end.
  FreezeWorldResult r = run(/*broadcast_drop=*/1.0, /*enable_freeze=*/true);
  EXPECT_TRUE(r.served);
  EXPECT_GE(r.discover_failures, 1u);
  EXPECT_GE(r.freezes, 1u);
  EXPECT_EQ(r.moved_redirects, 0u);  // the cache really was disabled
}

TEST(SodaFreeze, WithoutFallbackLinkIsPresumedDestroyed) {
  FreezeWorldResult r = run(/*broadcast_drop=*/1.0, /*enable_freeze=*/false);
  // "A process that is unable to find the far end of a link must assume
  //  it has been destroyed."
  EXPECT_FALSE(r.served);
  EXPECT_GE(r.discover_failures, 1u);
  EXPECT_EQ(r.freezes, 0u);
}

TEST(SodaFreeze, DiscoverAloneSufficesWhenBroadcastWorks) {
  FreezeWorldResult r = run(/*broadcast_drop=*/0.0, /*enable_freeze=*/true);
  EXPECT_TRUE(r.served);
  EXPECT_EQ(r.freezes, 0u);  // discover found it on the first try
}

}  // namespace
}  // namespace lynx
