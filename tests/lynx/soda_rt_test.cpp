// End-to-end tests: LYNX runtime over the SODA backend.
//
// Exercises §4.2: hints, move-by-accept, the moved-link cache, discover
// fallback, the freeze/unfreeze search, and the capabilities that
// distinguish SODA from Charlotte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "lynx/runtime.hpp"
#include "lynx/soda_backend.hpp"
#include "sim/engine.hpp"

namespace lynx {
namespace {

using net::NodeId;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& x : v) out += x + "; ";
  return out;
}

net::CsmaBusParams quiet_bus() {
  net::CsmaBusParams p;
  p.broadcast_drop_prob = 0.0;  // deterministic discover in most tests
  return p;
}

struct World {
  explicit World(net::CsmaBusParams bus = quiet_bus(),
                 SodaBackendParams bp = {})
      : network(engine, 6, sim::Rng(2026), bus),
        server(engine, "server",
               make_soda_backend(network, directory, NodeId(0), bp)),
        client(engine, "client",
               make_soda_backend(network, directory, NodeId(1), bp)) {}

  sim::Engine engine;
  SodaDirectory directory;
  soda::Network network;
  Process server;
  Process client;
  LinkHandle server_end;
  LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("connect", wire(this));
    engine.run();
    RELYNX_ASSERT(server_end.valid() && client_end.valid());
  }

  static sim::Task<> wire(World* w) {
    auto [se, ce] = co_await SodaBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }

  [[nodiscard]] const SodaBackend::Stats& client_stats() {
    return dynamic_cast<SodaBackend&>(client.backend()).stats();
  }
};

sim::Task<> echo_server_thread(ThreadCtx& ctx, LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    Incoming in = co_await ctx.receive();
    Message rep;
    rep.args = in.msg.args;
    co_await ctx.reply(in, std::move(rep));
  }
}

sim::Task<> echo_client_thread(ThreadCtx& ctx, LinkHandle link, int n,
                               std::vector<std::string>* log) {
  for (int i = 0; i < n; ++i) {
    Message req = make_message("echo", {std::string("s") + std::to_string(i)});
    Message rep = co_await ctx.call(link, std::move(req));
    log->push_back(std::get<std::string>(rep.args.at(0)));
  }
}

TEST(LynxSoda, EchoRpcRoundTrips) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return echo_server_thread(ctx, w.server_end, 3);
  });
  w.client.spawn_thread("drive", [&](ThreadCtx& ctx) {
    return echo_client_thread(ctx, w.client_end, 3, &log);
  });
  w.engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"s0", "s1", "s2"}))
      << join(w.server.thread_failures()) << join(w.client.thread_failures());
  // Screening by accept: nothing unwanted was ever received.
  EXPECT_EQ(w.client_stats().unwanted_received, 0u);
}

TEST(LynxSoda, MovesMultipleLinksInOneMessage) {
  World w;
  w.boot();
  std::vector<std::string> log;
  constexpr int kLinks = 3;

  auto mover = [](ThreadCtx& ctx, LinkHandle via, int n,
                  std::vector<std::string>* lg) -> sim::Task<> {
    std::vector<LinkHandle> keep;
    Message req = make_message("take", {});
    for (int i = 0; i < n; ++i) {
      LocalLinkPair pair = co_await ctx.new_link();
      keep.push_back(pair.end1);
      req.args.emplace_back(pair.end2);
    }
    Message rep = co_await ctx.call(via, std::move(req));
    (void)rep;
    for (std::size_t i = 0; i < keep.size(); ++i) {
      Message probe = make_message("probe", {static_cast<std::int64_t>(i)});
      Message r = co_await ctx.call(keep[i], std::move(probe));
      lg->push_back("ok" +
                    std::to_string(std::get<std::int64_t>(r.args.at(0))));
    }
  };
  auto taker = [](ThreadCtx& ctx, LinkHandle via, int n,
                  std::vector<std::string>* lg) -> sim::Task<> {
    ctx.enable_requests(via);
    Incoming in = co_await ctx.receive();
    CO_CHECK_EQ(static_cast<int>(in.msg.count_links()), n);
    std::vector<LinkHandle> got;
    for (const Value& v : in.msg.args) got.push_back(std::get<LinkHandle>(v));
    Message empty;
    co_await ctx.reply(in, std::move(empty));
    lg->push_back("took");
    for (LinkHandle h : got) ctx.enable_requests(h);
    for (int i = 0; i < n; ++i) {
      Incoming probe = co_await ctx.receive();
      Message rep;
      rep.args = probe.msg.args;
      co_await ctx.reply(probe, std::move(rep));
    }
  };

  w.server.spawn_thread("take", [&](ThreadCtx& ctx) {
    return taker(ctx, w.server_end, kLinks, &log);
  });
  w.client.spawn_thread("move", [&](ThreadCtx& ctx) {
    return mover(ctx, w.client_end, kLinks, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u + kLinks)
      << join(w.server.thread_failures()) << join(w.client.thread_failures());
  EXPECT_EQ(log[0], "took");
}

// ---- capability 4: aborted caller detected by the replier -------------------

sim::Task<> soda_slow_replier(ThreadCtx& ctx, LinkHandle link,
                              std::vector<std::string>* log) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  co_await ctx.delay(sim::msec(300));
  try {
    Message rep;
    co_await ctx.reply(in, std::move(rep));
    log->push_back("reply-sent");
  } catch (const LynxError& e) {
    log->push_back(std::string("replier-caught:") + to_string(e.kind()));
  }
}

sim::Task<> soda_aborting_caller(ThreadCtx& ctx, LinkHandle link,
                                 std::vector<std::string>* log) {
  try {
    Message req = make_message("slow", {});
    (void)co_await ctx.call(link, std::move(req));
    log->push_back("unexpected-success");
  } catch (const LynxError& e) {
    log->push_back(std::string("caller-caught:") + to_string(e.kind()));
  }
  co_await ctx.delay(sim::msec(800));  // keep the process alive
}

TEST(LynxSoda, ReplierFeelsExceptionWhenCallerAborted) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("slow", [&](ThreadCtx& ctx) {
    return soda_slow_replier(ctx, w.server_end, &log);
  });
  ThreadId caller = w.client.spawn_thread("caller", [&](ThreadCtx& ctx) {
    return soda_aborting_caller(ctx, w.client_end, &log);
  });
  w.engine.schedule(sim::msec(150), [&, caller] {
    w.client.abort_thread(caller);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u) << join(w.server.thread_failures())
                            << join(w.client.thread_failures());
  EXPECT_EQ(log[0], "caller-caught:aborted");
  EXPECT_EQ(log[1], "replier-caught:reply-unwanted");
}

// ---- capability 3: cancel recovers enclosures -------------------------------

sim::Task<> cancel_mover(ThreadCtx& ctx, LinkHandle via,
                         std::vector<std::string>* log) {
  LocalLinkPair pair = co_await ctx.new_link();
  try {
    Message req = make_message("never-served", {pair.end2});
    (void)co_await ctx.call(via, std::move(req));
    log->push_back("unexpected-success");
  } catch (const LynxError& e) {
    log->push_back(std::string("caught:") + to_string(e.kind()));
  }
  // The enclosure was recovered: both ends are still ours and usable.
  Message self_req = make_message("loopback", {std::int64_t(1)});
  // prove end2 still exists by destroying it cleanly (no exception)
  co_await ctx.destroy(pair.end2);
  co_await ctx.destroy(pair.end1);
  log->push_back("enclosure-recovered");
  (void)self_req;
  co_await ctx.delay(sim::msec(100));
}

TEST(LynxSoda, CancelledSendRecoversEnclosure) {
  // The server never opens its queue, so the request stays parked at the
  // kernel; the abort revokes it and the enclosure never moves.
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("idle", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c) -> sim::Task<> {
      co_await c.delay(sim::sec(1));
    }(ctx);
  });
  ThreadId mover = w.client.spawn_thread("mover", [&](ThreadCtx& ctx) {
    return cancel_mover(ctx, w.client_end, &log);
  });
  w.engine.schedule(sim::msec(120), [&, mover] {
    w.client.abort_thread(mover);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 2u) << join(w.client.thread_failures());
  EXPECT_EQ(log[0], "caught:aborted");
  EXPECT_EQ(log[1], "enclosure-recovered");
}

// ---- crash detection ----------------------------------------------------------

TEST(LynxSoda, PeerTerminationRaisesException) {
  World w;
  w.boot();
  std::vector<std::string> log;
  w.server.spawn_thread("quit", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c) -> sim::Task<> {
      co_await c.delay(sim::msec(10));
    }(ctx);
  });
  w.client.spawn_thread("victim", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& c, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      co_await c.delay(sim::msec(100));  // after the server is gone
      try {
        Message req = make_message("x", {});
        (void)co_await c.call(l, std::move(req));
        lg->push_back("unexpected-success");
      } catch (const LynxError& e) {
        lg->push_back(std::string("caught:") + to_string(e.kind()));
      }
    }(ctx, w.client_end, &log);
  });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u) << join(w.client.thread_failures());
  EXPECT_EQ(log[0], "caught:link-destroyed");
}

// ---- dormant link moved, then used: cache redirect (E10) --------------------

// Chain: A holds link L to C (via bootstrap), A ships its end of L to B;
// C's hint still points at A.  When C finally uses L, A redirects it to
// B from the moved-link cache.
TEST(LynxSoda, DormantMovedLinkIsFoundViaCache) {
  sim::Engine engine;
  SodaDirectory directory;
  soda::Network network(engine, 6, sim::Rng(7), quiet_bus());
  Process a(engine, "A", make_soda_backend(network, directory, NodeId(0)));
  Process b(engine, "B", make_soda_backend(network, directory, NodeId(1)));
  Process c(engine, "C", make_soda_backend(network, directory, NodeId(2)));
  a.start();
  b.start();
  c.start();
  LinkHandle ab_a, ab_b;  // transfer link A<->B
  LinkHandle l_a, l_c;    // link L: A<->C
  engine.spawn("wire", [](Process* pa, Process* pb, Process* pc,
                          LinkHandle* w1, LinkHandle* w2, LinkHandle* w3,
                          LinkHandle* w4) -> sim::Task<> {
    auto [x, y] = co_await SodaBackend::connect(*pa, *pb);
    *w1 = x;
    *w2 = y;
    auto [u, v] = co_await SodaBackend::connect(*pa, *pc);
    *w3 = u;
    *w4 = v;
  }(&a, &b, &c, &ab_a, &ab_b, &l_a, &l_c));
  engine.run();

  std::vector<std::string> log;
  // A: ship its end of L to B over the transfer link; stay alive.
  a.spawn_thread("ship", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle via, LinkHandle moving,
              std::vector<std::string>* lg) -> sim::Task<> {
      Message req = make_message("take", {moving});
      (void)co_await cx.call(via, std::move(req));
      lg->push_back("a-shipped");
      co_await cx.delay(sim::sec(2));
    }(ctx, ab_a, l_a, &log);
  });
  // B: receive the end, then serve one request on it.
  b.spawn_thread("takeserve", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle via,
              std::vector<std::string>* lg) -> sim::Task<> {
      cx.enable_requests(via);
      Incoming in = co_await cx.receive();
      LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
      Message empty;
      co_await cx.reply(in, std::move(empty));
      cx.enable_requests(got);
      Incoming r = co_await cx.receive();
      lg->push_back("b-served:" + r.msg.op);
      Message rep;
      co_await cx.reply(r, std::move(rep));
    }(ctx, ab_b, &log);
  });
  // C: wait until the move is long done, then use the dormant link; its
  // hint (A) is stale and must be fixed via A's cache.
  c.spawn_thread("lateuser", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle l,
              std::vector<std::string>* lg) -> sim::Task<> {
      co_await cx.delay(sim::msec(500));
      Message req = make_message("late", {});
      Message rep = co_await cx.call(l, std::move(req));
      (void)rep;
      lg->push_back("c-late-ok");
    }(ctx, l_c, &log);
  });
  engine.run();
  ASSERT_EQ(log.size(), 3u) << join(a.thread_failures())
                            << join(b.thread_failures())
                            << join(c.thread_failures());
  EXPECT_EQ(log[0], "a-shipped");
  EXPECT_EQ(log[1], "b-served:late");
  EXPECT_EQ(log[2], "c-late-ok");
  const auto& sa = dynamic_cast<SodaBackend&>(a.backend()).stats();
  const auto& sc = dynamic_cast<SodaBackend&>(c.backend()).stats();
  EXPECT_GE(sa.moved_redirects, 1u);  // A redirected C from its cache
  EXPECT_GE(sc.hint_misses, 1u);      // C's hint was stale
}

}  // namespace
}  // namespace lynx
