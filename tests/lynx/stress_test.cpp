// Property-style parameterized stress tests (TEST_P over seeds and
// backends): randomized multi-client workloads with payload-size sweeps,
// queue open/close churn, link churn, and determinism checks.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "lynx/lynx.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace lynx {
namespace {

using net::NodeId;

enum class Substrate { kCharlotte, kSoda, kChrysalis };

const char* to_string(Substrate s) {
  switch (s) {
    case Substrate::kCharlotte: return "charlotte";
    case Substrate::kSoda: return "soda";
    case Substrate::kChrysalis: return "chrysalis";
  }
  return "?";
}

// A polymorphic world: one server + K clients on the chosen substrate.
struct MultiWorld {
  MultiWorld(Substrate sub, std::size_t n_clients, std::uint64_t seed)
      : substrate(sub) {
    switch (sub) {
      case Substrate::kCharlotte:
        charlotte_cluster =
            std::make_unique<charlotte::Cluster>(engine, n_clients + 1);
        break;
      case Substrate::kSoda: {
        net::CsmaBusParams p;
        p.broadcast_drop_prob = 0.0;
        soda_network = std::make_unique<soda::Network>(
            engine, n_clients + 1, sim::Rng(seed), p);
        break;
      }
      case Substrate::kChrysalis:
        chrysalis_kernel = std::make_unique<chrysalis::Kernel>(engine);
        break;
    }
    server = make_process("server", 0);
    for (std::size_t i = 0; i < n_clients; ++i) {
      clients.push_back(
          make_process("client" + std::to_string(i), i + 1));
    }
    server->start();
    for (auto& c : clients) c->start();

    server_ends.resize(n_clients);
    client_ends.resize(n_clients);
    for (std::size_t i = 0; i < n_clients; ++i) {
      engine.spawn("wire", wire(this, i));
    }
    engine.run();
  }

  std::unique_ptr<Process> make_process(std::string name, std::size_t node) {
    const net::NodeId nid(static_cast<std::uint32_t>(node));
    switch (substrate) {
      case Substrate::kCharlotte:
        return std::make_unique<Process>(
            engine, std::move(name),
            make_charlotte_backend(*charlotte_cluster, nid),
            vax_runtime_costs());
      case Substrate::kSoda:
        return std::make_unique<Process>(
            engine, std::move(name),
            make_soda_backend(*soda_network, directory, nid),
            pdp11_runtime_costs());
      case Substrate::kChrysalis:
        return std::make_unique<Process>(
            engine, std::move(name),
            make_chrysalis_backend(*chrysalis_kernel, nid),
            mc68000_runtime_costs());
    }
    return nullptr;
  }

  static sim::Task<> wire(MultiWorld* w, std::size_t i) {
    switch (w->substrate) {
      case Substrate::kCharlotte: {
        auto [a, b] = co_await CharlotteBackend::connect(*w->server,
                                                         *w->clients[i]);
        w->server_ends[i] = a;
        w->client_ends[i] = b;
        co_return;
      }
      case Substrate::kSoda: {
        auto [a, b] =
            co_await SodaBackend::connect(*w->server, *w->clients[i]);
        w->server_ends[i] = a;
        w->client_ends[i] = b;
        co_return;
      }
      case Substrate::kChrysalis: {
        auto [a, b] =
            co_await ChrysalisBackend::connect(*w->server, *w->clients[i]);
        w->server_ends[i] = a;
        w->client_ends[i] = b;
        co_return;
      }
    }
  }

  Substrate substrate;
  sim::Engine engine;
  SodaDirectory directory;
  std::unique_ptr<charlotte::Cluster> charlotte_cluster;
  std::unique_ptr<soda::Network> soda_network;
  std::unique_ptr<chrysalis::Kernel> chrysalis_kernel;
  std::unique_ptr<Process> server;
  std::vector<std::unique_ptr<Process>> clients;
  std::vector<LinkHandle> server_ends;
  std::vector<LinkHandle> client_ends;
};

// ---- the randomized workload -------------------------------------------------

// Server: serve `total` checksum ops across all links (fair receive).
sim::Task<> checksum_server(ThreadCtx& ctx, std::vector<LinkHandle> links,
                            int total) {
  for (LinkHandle l : links) ctx.enable_requests(l);
  for (int i = 0; i < total; ++i) {
    Incoming in = co_await ctx.receive();
    const auto& data = std::get<Bytes>(in.msg.args.at(1));
    std::int64_t sum = std::accumulate(data.begin(), data.end(),
                                       std::int64_t{0});
    Message rep;
    rep.args.emplace_back(std::get<std::int64_t>(in.msg.args.at(0)));
    rep.args.emplace_back(sum);
    co_await ctx.reply(in, std::move(rep));
  }
}

// Client: `ops` calls with random payload sizes; verifies checksums.
sim::Task<> checksum_client(ThreadCtx& ctx, LinkHandle link, int ops,
                            std::uint64_t seed, int* verified) {
  sim::Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    const auto len = static_cast<std::size_t>(rng.next_below(1200));
    Bytes data(len);
    std::int64_t expect = 0;
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
      expect += b;
    }
    Message req = make_message("checksum", {std::int64_t(i), data});
    Message rep = co_await ctx.call(link, std::move(req));
    CO_CHECK_EQ(std::get<std::int64_t>(rep.args.at(0)), i);
    CO_CHECK_EQ(std::get<std::int64_t>(rep.args.at(1)), expect);
    ++*verified;
  }
}

struct StressParam {
  Substrate substrate;
  std::uint64_t seed;
};

class StressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressTest, RandomizedChecksumWorkloadCompletes) {
  const StressParam p = GetParam();
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 4;
  MultiWorld w(p.substrate, kClients, p.seed);
  int verified = 0;
  w.server->spawn_thread("srv", [&](ThreadCtx& ctx) {
    return checksum_server(ctx, w.server_ends, kClients * kOpsPerClient);
  });
  for (int i = 0; i < kClients; ++i) {
    w.clients[static_cast<std::size_t>(i)]->spawn_thread(
        "cli", [&, i](ThreadCtx& ctx) {
          return checksum_client(
              ctx, w.client_ends[static_cast<std::size_t>(i)], kOpsPerClient,
              p.seed * 1000 + static_cast<std::uint64_t>(i), &verified);
        });
  }
  w.engine.run();
  std::string diag;
  for (const auto& f : w.server->thread_failures()) diag += f + "; ";
  for (const auto& c : w.clients) {
    for (const auto& f : c->thread_failures()) diag += f + "; ";
  }
  EXPECT_EQ(verified, kClients * kOpsPerClient)
      << to_string(p.substrate) << " seed " << p.seed << " :: " << diag;
  EXPECT_TRUE(w.engine.process_failures().empty());
  EXPECT_TRUE(w.server->thread_failures().empty()) << diag;
}

TEST_P(StressTest, WorkloadIsDeterministic) {
  const StressParam p = GetParam();
  auto run = [&] {
    MultiWorld w(p.substrate, 2, p.seed);
    int verified = 0;
    w.server->spawn_thread("srv", [&](ThreadCtx& ctx) {
      return checksum_server(ctx, w.server_ends, 4);
    });
    for (int i = 0; i < 2; ++i) {
      w.clients[static_cast<std::size_t>(i)]->spawn_thread(
          "cli", [&, i](ThreadCtx& ctx) {
            return checksum_client(
                ctx, w.client_ends[static_cast<std::size_t>(i)], 2,
                p.seed + static_cast<std::uint64_t>(i), &verified);
          });
    }
    w.engine.run();
    return w.engine.now();
  };
  EXPECT_EQ(run(), run());
}

std::string param_name(const ::testing::TestParamInfo<StressParam>& info) {
  return std::string(to_string(info.param.substrate)) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StressTest,
    ::testing::Values(StressParam{Substrate::kCharlotte, 1},
                      StressParam{Substrate::kCharlotte, 2},
                      StressParam{Substrate::kCharlotte, 3},
                      StressParam{Substrate::kSoda, 1},
                      StressParam{Substrate::kSoda, 2},
                      StressParam{Substrate::kSoda, 3},
                      StressParam{Substrate::kChrysalis, 1},
                      StressParam{Substrate::kChrysalis, 2},
                      StressParam{Substrate::kChrysalis, 3}),
    param_name);

// ---- link churn: create, move, use, destroy, repeat ---------------------------

sim::Task<> churn_client(ThreadCtx& ctx, LinkHandle via, int rounds,
                         int* completed) {
  for (int r = 0; r < rounds; ++r) {
    LocalLinkPair pair = co_await ctx.new_link();
    Message req = make_message("adopt", {pair.end2});
    (void)co_await ctx.call(via, std::move(req));
    Message ping = make_message("ping", {std::int64_t(r)});
    Message rep = co_await ctx.call(pair.end1, std::move(ping));
    CO_CHECK_EQ(std::get<std::int64_t>(rep.args.at(0)), r);
    co_await ctx.destroy(pair.end1);
    ++*completed;
  }
}

sim::Task<> churn_server(ThreadCtx& ctx, LinkHandle via, int rounds) {
  ctx.enable_requests(via);
  for (int r = 0; r < rounds; ++r) {
    Incoming in = co_await ctx.receive();
    LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
    Message empty;
    co_await ctx.reply(in, std::move(empty));
    ctx.enable_requests(got);
    Incoming ping = co_await ctx.receive();
    Message rep;
    rep.args = ping.msg.args;
    co_await ctx.reply(ping, std::move(rep));
    // client destroys; we just keep serving the front link
  }
}

class ChurnTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ChurnTest, LinkLifecycleChurnSurvives) {
  const StressParam p = GetParam();
  MultiWorld w(p.substrate, 1, p.seed);
  constexpr int kRounds = 5;
  int completed = 0;
  w.server->spawn_thread("srv", [&](ThreadCtx& ctx) {
    return churn_server(ctx, w.server_ends[0], kRounds);
  });
  w.clients[0]->spawn_thread("cli", [&](ThreadCtx& ctx) {
    return churn_client(ctx, w.client_ends[0], kRounds, &completed);
  });
  w.engine.run();
  EXPECT_EQ(completed, kRounds) << to_string(p.substrate);
  EXPECT_TRUE(w.engine.process_failures().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ChurnTest,
    ::testing::Values(StressParam{Substrate::kCharlotte, 7},
                      StressParam{Substrate::kSoda, 7},
                      StressParam{Substrate::kChrysalis, 7}),
    param_name);

// ---- crash injection: server dies mid-burst -----------------------------------

class CrashTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(CrashTest, ServerCrashSurfacesAsExceptionEverywhere) {
  const StressParam p = GetParam();
  MultiWorld w(p.substrate, 2, p.seed);
  std::vector<std::string> outcomes;
  w.server->spawn_thread("srv", [&](ThreadCtx& ctx) {
    return checksum_server(ctx, w.server_ends, 1000);  // never finishes
  });
  for (int i = 0; i < 2; ++i) {
    w.clients[static_cast<std::size_t>(i)]->spawn_thread(
        "cli", [&, i](ThreadCtx& ctx) {
          return [](ThreadCtx& c, LinkHandle l,
                    std::vector<std::string>* out) -> sim::Task<> {
            try {
              // Long enough that no substrate drains the burst before
              // the 250 ms crash (the v2 fast paths finish 100 calls
              // early on Chrysalis).
              for (int k = 0; k < 400; ++k) {
                Message req =
                    make_message("checksum", {std::int64_t(k), Bytes(10, 1)});
                (void)co_await c.call(l, std::move(req));
              }
              out->push_back("finished?!");
            } catch (const LynxError& e) {
              out->push_back(std::string(lynx::to_string(e.kind())));
            }
          }(ctx, w.client_ends[static_cast<std::size_t>(i)], &outcomes);
        });
  }
  // kill the server process mid-burst
  w.engine.schedule(sim::msec(250), [&] { w.server->terminate(); });
  w.engine.run_until(sim::sec(30));
  ASSERT_EQ(outcomes.size(), 2u) << to_string(p.substrate);
  for (const auto& o : outcomes) EXPECT_EQ(o, "link-destroyed");
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CrashTest,
    ::testing::Values(StressParam{Substrate::kCharlotte, 5},
                      StressParam{Substrate::kSoda, 5},
                      StressParam{Substrate::kChrysalis, 5}),
    param_name);

}  // namespace
}  // namespace lynx
