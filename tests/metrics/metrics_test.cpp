// Unit tests for the protocol-complexity metrics.
#include "metrics/complexity.hpp"

#include <gtest/gtest.h>

namespace metrics {
namespace {

TEST(ComplexityTest, ProfilesMatchThePaperStructure) {
  const BackendProfile ch = profile_charlotte();
  const BackendProfile so = profile_soda();
  const BackendProfile cy = profile_chrysalis();

  // Charlotte needs a whole protocol; the others do not.
  EXPECT_EQ(ch.protocol_message_types, 7);
  EXPECT_TRUE(ch.needs_retry_forbid);
  EXPECT_TRUE(ch.needs_goahead_enc);
  EXPECT_FALSE(so.needs_retry_forbid);
  EXPECT_FALSE(cy.needs_retry_forbid);

  // Moves: three-party agreement vs hints.
  EXPECT_EQ(ch.move_agreement_parties, 3);
  EXPECT_EQ(so.move_agreement_parties, 1);
  EXPECT_EQ(cy.move_agreement_parties, 1);

  // Multi-enclosure packetization only on Charlotte (figure 2):
  EXPECT_EQ(ch.extra_packets_multi_move(4), 1 + 3);
  EXPECT_EQ(so.extra_packets_multi_move(4), 0);
  EXPECT_EQ(cy.extra_packets_multi_move(4), 0);
}

TEST(ComplexityTest, SourceIsMeasured) {
  const BackendProfile ch = profile_charlotte();
  EXPECT_GT(ch.source_lines, 100u);
  EXPECT_GT(ch.special_case_lines, 20u);
  // The paper: ~5K of 21K for unwanted messages and multiple enclosures;
  // proportionally, the special-case code is a real chunk of the file.
  EXPECT_GT(ch.special_case_lines * 10, ch.source_lines);
}

TEST(ComplexityTest, UnreadableFileCountsZero) {
  EXPECT_EQ(count_source_lines("/nonexistent/file.cpp"), 0u);
}

}  // namespace
}  // namespace metrics
