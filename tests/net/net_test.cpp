// Unit tests for the three medium models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/faulty_medium.hpp"

#include "net/butterfly_switch.hpp"
#include "net/csma_bus.hpp"
#include "net/loopback.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"

namespace net {
namespace {

struct Delivery {
  NodeId at;
  sim::Time when;
  std::string tag;
};

Frame make_frame(NodeId src, NodeId dst, std::size_t bytes, std::string tag) {
  return Frame{src, dst, bytes, std::any(std::move(tag))};
}

class Collector {
 public:
  Collector(sim::Engine& e, Medium& m, std::vector<NodeId> nodes)
      : engine_(&e) {
    for (NodeId n : nodes) {
      m.attach(n, [this, n](const Frame& f) {
        deliveries.push_back({n, engine_->now(), f.as<std::string>()});
      });
    }
  }
  std::vector<Delivery> deliveries;

 private:
  sim::Engine* engine_;
};

TEST(LoopbackTest, DeliversWithFixedLatency) {
  sim::Engine e;
  Loopback lo(e, sim::usec(25));
  Collector c(e, lo, {NodeId(0), NodeId(1)});
  lo.send(make_frame(NodeId(0), NodeId(1), 100, "hello"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].at, NodeId(1));
  EXPECT_EQ(c.deliveries[0].when, sim::usec(25));
  EXPECT_EQ(c.deliveries[0].tag, "hello");
  EXPECT_EQ(lo.frames_sent(), 1u);
  EXPECT_EQ(lo.bytes_sent(), 100u);
}

TEST(LoopbackTest, BroadcastSkipsSender) {
  sim::Engine e;
  Loopback lo(e, sim::usec(1));
  Collector c(e, lo, {NodeId(0), NodeId(1), NodeId(2)});
  lo.broadcast(make_frame(NodeId(0), NodeId::invalid(), 10, "b"));
  e.run();
  EXPECT_EQ(c.deliveries.size(), 2u);
  for (const auto& d : c.deliveries) EXPECT_NE(d.at, NodeId(0));
}


TEST(LoopbackTest, ZeroLossFixedLatencyContract) {
  // Loopback's contract: every frame arrives, exactly once, exactly
  // `latency` after send, in send order — the baseline the fault layer
  // must preserve when wrapping with an empty plan.
  auto run = [](bool wrapped) {
    sim::Engine e;
    Loopback lo(e, sim::usec(40));
    fault::FaultyMedium fm(e, lo, 123);
    Medium& m = wrapped ? static_cast<Medium&>(fm) : lo;
    Collector c(e, m, {NodeId(0), NodeId(1)});
    for (int i = 0; i < 25; ++i) {
      e.schedule(sim::usec(10) * i, [&m, i] {
        m.send(make_frame(NodeId(0), NodeId(1), 10, std::to_string(i)));
      });
    }
    e.run();
    return c.deliveries;
  };
  auto bare = run(false);
  auto thru = run(true);
  ASSERT_EQ(bare.size(), 25u);
  ASSERT_EQ(thru.size(), 25u);
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].tag, std::to_string(i));
    EXPECT_EQ(bare[i].when, sim::usec(10) * static_cast<std::int64_t>(i) +
                                sim::usec(40));
    EXPECT_EQ(thru[i].when, bare[i].when);
    EXPECT_EQ(thru[i].tag, bare[i].tag);
  }
}

TEST(TokenRingTest, ServiceTimeScalesWithPayload) {
  sim::Engine e;
  TokenRing ring(e);
  // 1000 B + 32 B header at 10 Mb/s = 825.6 us of clocking,
  // + 150 us token + 50 us overhead.
  const auto t0 = ring.service_time(0);
  const auto t1000 = ring.service_time(1000);
  EXPECT_EQ(t1000 - t0, sim::transmission_time(8000, 10'000'000));
  EXPECT_GT(t0, sim::usec(150));
}

TEST(TokenRingTest, UnicastArrivesAfterServicePlusPropagation) {
  sim::Engine e;
  TokenRingParams p;
  TokenRing ring(e, p);
  Collector c(e, ring, {NodeId(0), NodeId(1)});
  ring.send(make_frame(NodeId(0), NodeId(1), 200, "x"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 1u);
  EXPECT_EQ(c.deliveries[0].when, ring.service_time(200) + p.propagation);
}

TEST(TokenRingTest, TransmissionsAreSerialized) {
  sim::Engine e;
  TokenRingParams p;
  TokenRing ring(e, p);
  Collector c(e, ring, {NodeId(0), NodeId(1), NodeId(2)});
  ring.send(make_frame(NodeId(0), NodeId(1), 0, "first"));
  ring.send(make_frame(NodeId(2), NodeId(1), 0, "second"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 2u);
  EXPECT_EQ(c.deliveries[0].tag, "first");
  EXPECT_EQ(c.deliveries[1].tag, "second");
  // Second frame waits for the first to finish service.
  EXPECT_EQ(c.deliveries[1].when, 2 * ring.service_time(0) + p.propagation);
}

TEST(CsmaBusTest, KilobyteCostsRoughlyEightMs) {
  sim::Engine e;
  CsmaBus bus(e, sim::Rng(1));
  const double ms = sim::to_msec(bus.clock_out_time(1000));
  EXPECT_GT(ms, 7.9);
  EXPECT_LT(ms, 8.5);
}

TEST(CsmaBusTest, BusyBusForcesBackoff) {
  sim::Engine e;
  CsmaBusParams p;
  p.broadcast_drop_prob = 0.0;
  CsmaBus bus(e, sim::Rng(7), p);
  Collector c(e, bus, {NodeId(0), NodeId(1), NodeId(2)});
  bus.send(make_frame(NodeId(0), NodeId(1), 1000, "a"));
  bus.send(make_frame(NodeId(2), NodeId(1), 0, "b"));
  e.run();
  ASSERT_EQ(c.deliveries.size(), 2u);
  EXPECT_GE(bus.backoffs(), 1u);
  EXPECT_EQ(c.deliveries[0].tag, "a");
}

TEST(CsmaBusTest, BroadcastDropsAreApplied) {
  sim::Engine e;
  CsmaBusParams p;
  p.broadcast_drop_prob = 0.5;
  CsmaBus bus(e, sim::Rng(3), p);
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < 41; ++i) nodes.push_back(NodeId(i));
  Collector c(e, bus, nodes);
  bus.broadcast(make_frame(NodeId(0), NodeId::invalid(), 10, "b"));
  e.run();
  // 40 potential receivers at 50% drop: expect far from both extremes.
  EXPECT_GT(c.deliveries.size(), 5u);
  EXPECT_LT(c.deliveries.size(), 35u);
  EXPECT_GT(bus.drops(), 0u);
}

TEST(CsmaBusTest, UnicastIsReliableByDefault) {
  sim::Engine e;
  CsmaBus bus(e, sim::Rng(5));
  Collector c(e, bus, {NodeId(0), NodeId(1)});
  for (int i = 0; i < 50; ++i) {
    bus.send(make_frame(NodeId(0), NodeId(1), 10, std::to_string(i)));
  }
  e.run();
  EXPECT_EQ(c.deliveries.size(), 50u);
  EXPECT_EQ(bus.drops(), 0u);
}


TEST(CsmaBusTest, DropObserverSeesEachLostFrame) {
  sim::Engine e;
  CsmaBusParams p;
  p.broadcast_drop_prob = 0.5;
  CsmaBus bus(e, sim::Rng(3), p);
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < 21; ++i) nodes.push_back(NodeId(i));
  Collector c(e, bus, nodes);
  std::uint64_t observed = 0;
  std::uint64_t observed_at_node1 = 0;
  bus.set_drop_observer([&](const Frame& f, NodeId receiver) {
    ++observed;
    if (receiver == NodeId(1)) ++observed_at_node1;
    EXPECT_NE(f.id, 0u);  // dropped frames are already stamped
  });
  for (int i = 0; i < 10; ++i) {
    bus.broadcast(make_frame(NodeId(0), NodeId::invalid(), 10, "b"));
  }
  e.run();
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(observed, bus.drops());
  EXPECT_EQ(observed_at_node1, bus.drops_at(NodeId(1)));
  // Per-node counters partition the total.
  std::uint64_t sum = 0;
  for (NodeId n : nodes) sum += bus.drops_at(n);
  EXPECT_EQ(sum, bus.drops());
  EXPECT_EQ(bus.drops_at(NodeId(999)), 0u);  // never attached, never counted
}

TEST(CsmaBusTest, FramesAreStampedWithUniqueIds) {
  sim::Engine e;
  CsmaBus bus(e, sim::Rng(5));
  std::vector<std::uint64_t> ids;
  bus.attach(NodeId(0), [](const Frame&) {});
  bus.attach(NodeId(1), [&](const Frame& f) { ids.push_back(f.id); });
  for (int i = 0; i < 20; ++i) {
    bus.send(make_frame(NodeId(0), NodeId(1), 10, "x"));
  }
  e.run();
  ASSERT_EQ(ids.size(), 20u);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_NE(ids.front(), 0u);
}

TEST(ButterflyTest, StagesGrowWithNodes) {
  EXPECT_EQ(ButterflyFabric({.nodes = 1}).stages(), 0u);
  EXPECT_EQ(ButterflyFabric({.nodes = 4}).stages(), 1u);
  EXPECT_EQ(ButterflyFabric({.nodes = 16}).stages(), 2u);
  EXPECT_EQ(ButterflyFabric({.nodes = 64}).stages(), 3u);
  EXPECT_EQ(ButterflyFabric({.nodes = 128}).stages(), 4u);
}

TEST(ButterflyTest, RemoteCostsMoreThanLocal) {
  ButterflyFabric fab;
  EXPECT_GT(fab.word_reference(true), fab.word_reference(false));
  EXPECT_GT(fab.block_transfer(100, true), fab.block_transfer(100, false));
}

TEST(ButterflyTest, BlockTransferScalesPerByte) {
  ButterflyFabric fab;
  const auto d100 = fab.block_transfer(100, true);
  const auto d200 = fab.block_transfer(200, true);
  EXPECT_EQ(d200 - d100, 100 * ButterflyParams{}.per_byte_block);
}


TEST(ButterflyTest, ContendedRemoteTransferPaysPerContender) {
  // Switch contention (the paper's ~4% degradation source, Â§3.2): each
  // simultaneous contender adds one full hop traversal per stage.
  ButterflyFabric fab({.nodes = 64});
  const auto clean = fab.block_transfer(100, true);
  const auto c1 = fab.block_transfer(100, true, 1);
  const auto c4 = fab.block_transfer(100, true, 4);
  EXPECT_EQ(clean, fab.block_transfer(100, true, 0));
  const auto per = ButterflyParams{}.hop_latency *
                   static_cast<sim::Duration>(fab.stages());
  EXPECT_EQ(c1 - clean, per);
  EXPECT_EQ(c4 - clean, 4 * per);
  // Local transfers never cross the switch, so contention is free.
  EXPECT_EQ(fab.block_transfer(100, false, 8), fab.block_transfer(100, false));
}

}  // namespace
}  // namespace net
