// Unit tests for the Wing-Gong linearizability oracle on hand-built
// histories (no simulated world involved).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/linearizability.hpp"

namespace check {
namespace {

// Builder for readable histories.  seq doubles as both inv_seq and
// res_seq bookkeeping: pass explicit interval endpoints.
KvOp op(KvOpType t, std::int64_t key, std::int64_t arg, std::uint64_t inv_seq,
        std::uint64_t res_seq, std::int64_t result) {
  KvOp o;
  o.type = t;
  o.key = key;
  o.arg = arg;
  o.completed = true;
  o.result = result;
  o.inv_seq = inv_seq;
  o.res_seq = res_seq;
  o.trace = inv_seq;
  return o;
}

KvOp lost(KvOpType t, std::int64_t key, std::int64_t arg,
          std::uint64_t inv_seq) {
  KvOp o;
  o.type = t;
  o.key = key;
  o.arg = arg;
  o.errored = true;
  o.inv_seq = inv_seq;
  o.trace = inv_seq;
  return o;
}

TEST(Linearizability, EmptyHistoryIsFine) {
  const LinVerdict v = check_history({});
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.ops_checked, 0u);
}

TEST(Linearizability, SequentialRegisterHistory) {
  const std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 7, 1, 2, 7),
      op(KvOpType::kGet, 0, 0, 3, 4, 7),
      op(KvOpType::kAdd, 0, 5, 5, 6, 12),
      op(KvOpType::kGet, 0, 0, 7, 8, 12),
  };
  const LinVerdict v = check_history(h);
  EXPECT_TRUE(v.ok) << v.failure;
  EXPECT_EQ(v.ops_checked, 4u);
}

TEST(Linearizability, StaleReadIsCaught) {
  // put(7) completed strictly before the get was invoked, yet the get
  // returned the initial value 0.
  const std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 7, 1, 2, 7),
      op(KvOpType::kGet, 0, 0, 3, 4, 0),
  };
  const LinVerdict v = check_history(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.failure.find("no linearization"), std::string::npos);
}

TEST(Linearizability, ConcurrentReadMaySeeEitherValue) {
  // get overlaps the put, so 0 and 7 are both legal...
  std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 7, 1, 4, 7),
      op(KvOpType::kGet, 0, 0, 2, 3, 0),
  };
  EXPECT_TRUE(check_history(h).ok);
  h[1].result = 7;
  EXPECT_TRUE(check_history(h).ok);
  h[1].result = 3;  // ...but not a value never written
  EXPECT_FALSE(check_history(h).ok);
}

TEST(Linearizability, RealTimeOrderAcrossClients) {
  // Client A: put(1) then put(2), sequential.  Client B's later get
  // must not see 1 once put(2) completed before its invocation.
  const std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 1, 1, 2, 1),
      op(KvOpType::kPut, 0, 2, 3, 4, 2),
      op(KvOpType::kGet, 0, 0, 5, 6, 1),
  };
  EXPECT_FALSE(check_history(h).ok);
}

TEST(Linearizability, ErroredWriteMayOrMayNotHaveHappened) {
  // The crashed put(9)'s effect is optional: a later read of 9 or of
  // the prior value are both legal.
  std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 4, 1, 2, 4),
      lost(KvOpType::kPut, 0, 9, 3),
      op(KvOpType::kGet, 0, 0, 5, 6, 9),
  };
  LinVerdict v = check_history(h);
  EXPECT_TRUE(v.ok) << v.failure;
  EXPECT_EQ(v.optional_ops, 1u);
  h[2].result = 4;
  EXPECT_TRUE(check_history(h).ok);
  h[2].result = 13;  // add-like corruption: never a reachable value
  EXPECT_FALSE(check_history(h).ok);
}

TEST(Linearizability, ErroredWriteCannotLinearizeBeforeItsInvocation) {
  // get completed before the failed put was even invoked, so the get
  // cannot have observed it.
  const std::vector<KvOp> h = {
      op(KvOpType::kGet, 0, 0, 1, 2, 9),
      lost(KvOpType::kPut, 0, 9, 3),
  };
  EXPECT_FALSE(check_history(h).ok);
}

TEST(Linearizability, ErroredReadConstrainsNothing) {
  const std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 7, 1, 2, 7),
      lost(KvOpType::kGet, 0, 0, 3),
  };
  const LinVerdict v = check_history(h);
  EXPECT_TRUE(v.ok) << v.failure;
  EXPECT_EQ(v.ops_checked, 1u);
  EXPECT_EQ(v.optional_ops, 0u);  // errored gets are discarded
}

TEST(Linearizability, KeysAreIndependent) {
  // A violation on key 1 is reported even though key 0 is clean.
  const std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 5, 1, 2, 5),
      op(KvOpType::kGet, 0, 0, 3, 4, 5),
      op(KvOpType::kPut, 1, 8, 5, 6, 8),
      op(KvOpType::kGet, 1, 0, 7, 8, 0),
  };
  const LinVerdict v = check_history(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.failure.find("key 1"), std::string::npos);
}

TEST(Linearizability, CounterSemantics) {
  // Two concurrent adds: the final read must see both (adds commute
  // but both must apply exactly once).
  std::vector<KvOp> h = {
      op(KvOpType::kAdd, 0, 3, 1, 4, 3),
      op(KvOpType::kAdd, 0, 5, 2, 3, 5),
      op(KvOpType::kGet, 0, 0, 5, 6, 8),
  };
  // add(5) returning 5 forces it first; add(3) returning 3 would then
  // be wrong (3 after 5 yields 8) -- history as built is contradictory.
  EXPECT_FALSE(check_history(h).ok);
  h[0].result = 8;  // add(3) observed the concurrent add(5): consistent
  EXPECT_TRUE(check_history(h).ok) << check_history(h).failure;
}

TEST(Linearizability, PendingOpWithNoResponseIsOptional) {
  std::vector<KvOp> h = {
      op(KvOpType::kPut, 0, 4, 1, 2, 4),
  };
  KvOp pending;  // neither completed nor errored: in flight at horizon
  pending.type = KvOpType::kPut;
  pending.key = 0;
  pending.arg = 6;
  pending.inv_seq = 3;
  h.push_back(pending);
  const LinVerdict v = check_history(h);
  EXPECT_TRUE(v.ok) << v.failure;
  EXPECT_EQ(v.optional_ops, 1u);
}

TEST(Linearizability, OversizedKeyHistoryFailsLoudly) {
  std::vector<KvOp> h;
  for (std::uint64_t i = 0; i < 64; ++i) {
    h.push_back(op(KvOpType::kAdd, 0, 0, 2 * i + 1, 2 * i + 2, 0));
  }
  const LinVerdict v = check_history(h);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.failure.find("caps a key at 63"), std::string::npos);
}

}  // namespace
}  // namespace check
