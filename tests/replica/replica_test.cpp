// The replicated KV service, unit level: clean commits on all three
// substrates, backup crash/restart catch-up, primary fail-over, and
// the planted stale-read bug being visible to the linearizability
// oracle (and invisible without the debug flag).
#include <gtest/gtest.h>


#include "check/linearizability.hpp"
#include "replica/replica.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace replica {
namespace {

TEST(Replica, CleanRunCommitsEverythingOnAllSubstrates) {
  for (load::Substrate s : load::all_substrates()) {
    sim::Engine engine;
    trace::Recorder rec(engine, 1u << 18);
    Options o;
    o.replicas = 3;
    o.clients = 2;
    o.ops_per_client = 6;
    Group g(engine, s, o);
    engine.run();
    EXPECT_EQ(g.metrics().ok, 12u) << load::to_string(s);
    EXPECT_EQ(g.metrics().err, 0u) << load::to_string(s);
    // Every backup applied every write (4 writes per client x 2).
    EXPECT_EQ(g.store(0).applied, 8u) << load::to_string(s);
    EXPECT_EQ(g.store(1).applied, 8u) << load::to_string(s);
    EXPECT_EQ(g.store(2).applied, 8u) << load::to_string(s);
    EXPECT_EQ(g.store(1).kv, g.store(0).kv) << load::to_string(s);
    EXPECT_EQ(g.store(2).kv, g.store(0).kv) << load::to_string(s);
    EXPECT_TRUE(g.thread_failures().empty()) << load::to_string(s);
    const check::LinVerdict lin = check::check_trace(rec);
    EXPECT_TRUE(lin.ok) << lin.failure;
    EXPECT_EQ(lin.ops_checked, 12u);
  }
}

// Mid-workload fault times per substrate: an op takes ~105 ms on
// Charlotte, ~38 ms on SODA, ~5 ms on Chrysalis (see the probe above),
// so these land a crash while commits are streaming.
struct FaultTimes {
  sim::Time crash;
  sim::Time restart;
};

FaultTimes fault_times(load::Substrate s) {
  switch (s) {
    case load::Substrate::kCharlotte: return {sim::msec(300), sim::msec(700)};
    case load::Substrate::kSoda: return {sim::msec(120), sim::msec(280)};
    case load::Substrate::kChrysalis: return {sim::msec(20), sim::msec(45)};
  }
  return {sim::msec(100), sim::msec(200)};
}

TEST(Replica, PrimaryFailoverKeepsHistoryLinearizable) {
  for (load::Substrate s : load::all_substrates()) {
    sim::Engine engine;
    trace::Recorder rec(engine, 1u << 18);
    Options o;
    o.replicas = 3;
    o.clients = 2;
    o.ops_per_client = 6;
    const FaultTimes ft = fault_times(s);
    o.crash_primary_at = ft.crash;
    o.restart_primary_at = ft.restart;
    Group g(engine, s, o);
    const bool finished = engine.run_until(sim::sec(30));
    EXPECT_TRUE(finished) << load::to_string(s) << ": wedged";
    EXPECT_GE(g.view(), 1u) << load::to_string(s);
    EXPECT_NE(g.primary_index(), 0u) << load::to_string(s);
    // Progress resumed after the crash and clients finished their runs.
    EXPECT_GE(g.metrics().ok, 6u) << load::to_string(s);
    EXPECT_EQ(g.metrics().ok + g.metrics().err,
              static_cast<std::uint64_t>(o.clients * o.ops_per_client))
        << load::to_string(s);
    ASSERT_TRUE(g.failover_recovery().has_value()) << load::to_string(s);
    EXPECT_GT(*g.failover_recovery(), 0) << load::to_string(s);
    EXPECT_TRUE(g.thread_failures().empty()) << load::to_string(s);
    EXPECT_FALSE(g.invariant_violation().has_value())
        << *g.invariant_violation();
    // Every live replica converged on the new primary's state.
    const Store& p = g.store(g.primary_index());
    for (std::size_t i = 0; i < 3; ++i) {
      if (!g.alive(i)) continue;
      EXPECT_EQ(g.store(i).kv, p.kv) << load::to_string(s) << " node " << i;
    }
    const check::LinVerdict lin = check::check_trace(rec);
    EXPECT_TRUE(lin.ok) << load::to_string(s) << ": " << lin.failure;
  }
}

TEST(Replica, BackupBounceCatchesUpViaSync) {
  for (load::Substrate s : load::all_substrates()) {
    sim::Engine engine;
    trace::Recorder rec(engine, 1u << 18);
    Options o;
    o.replicas = 3;
    o.clients = 2;
    o.ops_per_client = 6;
    const FaultTimes ft = fault_times(s);
    o.crash_backup_at = ft.crash;
    o.restart_backup_at = ft.restart;
    Group g(engine, s, o);
    const bool finished = engine.run_until(sim::sec(30));
    EXPECT_TRUE(finished) << load::to_string(s) << ": wedged";
    // A backup crash is invisible to clients: the primary drops it from
    // the fan-out and keeps committing.
    EXPECT_EQ(g.metrics().ok, 12u) << load::to_string(s);
    EXPECT_EQ(g.metrics().err, 0u) << load::to_string(s);
    EXPECT_EQ(g.view(), 0u) << load::to_string(s);
    EXPECT_TRUE(g.thread_failures().empty()) << load::to_string(s);
    // The bounced backup rejoined and synced to the primary's state.
    EXPECT_TRUE(g.alive(2)) << load::to_string(s);
    EXPECT_EQ(g.store(2).kv, g.store(0).kv) << load::to_string(s);
    EXPECT_EQ(g.store(2).applied, g.store(0).applied) << load::to_string(s);
    const check::LinVerdict lin = check::check_trace(rec);
    EXPECT_TRUE(lin.ok) << load::to_string(s) << ": " << lin.failure;
  }
}

TEST(Replica, PlantedStaleReadBugIsCaughtByOracle) {
  // One client, one key, sequential put-then-get: with the planted bug
  // the get answers from the key's previous value, which the oracle
  // must reject on every substrate.
  for (load::Substrate s : load::all_substrates()) {
    sim::Engine engine;
    trace::Recorder rec(engine, 1u << 18);
    Options o;
    o.replicas = 3;
    o.clients = 1;
    o.ops_per_client = 2;  // i=0 put, i=1 get, same key
    o.keys = 1;
    o.debug_stale_reads = true;
    Group g(engine, s, o);
    engine.run();
    EXPECT_EQ(g.metrics().ok, 2u) << load::to_string(s);
    const check::LinVerdict lin = check::check_trace(rec);
    EXPECT_FALSE(lin.ok) << load::to_string(s)
                         << ": stale read slipped past the oracle";
    EXPECT_NE(lin.failure.find("no linearization"), std::string::npos);
  }
}

}  // namespace
}  // namespace replica
