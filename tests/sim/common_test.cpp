// Unit tests for common utilities (ids, results, ring buffer).
#include <gtest/gtest.h>

#include <sstream>

#include "common/result.hpp"
#include "common/ring_buffer.hpp"
#include "common/strong_id.hpp"

namespace {

struct WidgetTag {
  static const char* prefix() { return "widget"; }
};
struct GadgetTag {
  static const char* prefix() { return "gadget"; }
};
using WidgetId = common::StrongId<WidgetTag>;
using GadgetId = common::StrongId<GadgetTag>;

TEST(StrongIdTest, DefaultIsInvalid) {
  WidgetId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, WidgetId::invalid());
}

TEST(StrongIdTest, DistinctTypesDoNotMix) {
  static_assert(!std::is_convertible_v<WidgetId, GadgetId>);
  static_assert(!std::is_convertible_v<std::uint64_t, WidgetId>);
}

TEST(StrongIdTest, AllocatorIsMonotonic) {
  common::IdAllocator<WidgetId> alloc;
  EXPECT_EQ(alloc.next().value(), 0u);
  EXPECT_EQ(alloc.next().value(), 1u);
  EXPECT_EQ(alloc.issued(), 2u);
}

TEST(StrongIdTest, StreamsWithPrefix) {
  std::ostringstream os;
  os << WidgetId(4);
  EXPECT_EQ(os.str(), "widget4");
}

enum class Errc { kBad, kWorse };

common::Result<int, Errc> half(int x) {
  if (x % 2 != 0) return common::Err(Errc::kBad);
  return x / 2;
}

TEST(ResultTest, SuccessAndError) {
  auto ok = half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  auto bad = half(3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kBad);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusTest, DefaultIsOk) {
  common::Status<Errc> st;
  EXPECT_TRUE(st.ok());
  common::Status<Errc> bad = common::Err(Errc::kWorse);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kWorse);
}

TEST(RingBufferTest, PushPopWraps) {
  common::RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, FrontPeeks) {
  common::RingBuffer<int> rb(2);
  ASSERT_TRUE(rb.push(42));
  EXPECT_EQ(rb.front(), 42);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBufferTest, ClearResets) {
  common::RingBuffer<int> rb(2);
  ASSERT_TRUE(rb.push(1));
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(2));
  EXPECT_EQ(rb.front(), 2);
}

}  // namespace
