// Unit tests for the discrete-event engine and coroutine tasks.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace sim {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(usec(30), [&] { order.push_back(3); });
  e.schedule(usec(10), [&] { order.push_back(1); });
  e.schedule(usec(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), usec(30));
}

TEST(EngineTest, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    e.schedule(usec(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.schedule(usec(1), [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), usec(2));
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(usec(10), [&] { ++fired; });
  e.schedule(usec(30), [&] { ++fired; });
  EXPECT_FALSE(e.run_until(usec(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.run_until(usec(100)));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, CancelledTimerDoesNotFire) {
  Engine e;
  int fired = 0;
  TimerHandle t = e.schedule_cancellable(usec(10), [&] { ++fired; });
  EXPECT_TRUE(t.pending());
  t.cancel();
  EXPECT_FALSE(t.pending());
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(EngineTest, StopHaltsTheRunLoop) {
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule(usec(2), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

// ---- coroutine processes ------------------------------------------------

Task<> sleep_twice(Engine* e, Time* t1, Time* t2) {
  co_await e->sleep(msec(1));
  *t1 = e->now();
  co_await e->sleep(msec(2));
  *t2 = e->now();
}

TEST(EngineCoroTest, SleepAdvancesSimulatedTime) {
  Engine e;
  Time t1 = -1, t2 = -1;
  e.spawn("sleeper", sleep_twice(&e, &t1, &t2));
  e.run();
  EXPECT_EQ(t1, msec(1));
  EXPECT_EQ(t2, msec(3));
  EXPECT_EQ(e.live_processes(), 0u);
}

Task<int> add_after(Engine* e, int a, int b) {
  co_await e->sleep(usec(5));
  co_return a + b;
}

Task<> caller(Engine* e, int* out) {
  // Nested task call: symmetric transfer there and back.
  *out = co_await add_after(e, 2, 3);
}

TEST(EngineCoroTest, NestedTasksReturnValues) {
  Engine e;
  int out = 0;
  e.spawn("caller", caller(&e, &out));
  e.run();
  EXPECT_EQ(out, 5);
}

Task<int> throws_after(Engine* e) {
  co_await e->sleep(usec(1));
  throw std::runtime_error("boom");
}

Task<> catches(Engine* e, std::string* what) {
  try {
    (void)co_await throws_after(e);
  } catch (const std::runtime_error& err) {
    *what = err.what();
  }
}

TEST(EngineCoroTest, ExceptionsPropagateAcrossAwait) {
  Engine e;
  std::string what;
  e.spawn("catches", catches(&e, &what));
  e.run();
  EXPECT_EQ(what, "boom");
  EXPECT_TRUE(e.process_failures().empty());
}

Task<> just_throws(Engine* e) {
  co_await e->sleep(usec(1));
  throw std::logic_error("unhandled");
}

TEST(EngineCoroTest, UnhandledProcessExceptionIsRecorded) {
  Engine e;
  e.spawn("bad-process", just_throws(&e));
  e.run();
  ASSERT_EQ(e.process_failures().size(), 1u);
  EXPECT_EQ(e.process_failures()[0], "bad-process: unhandled");
}

Task<> forever(Engine* e) {
  for (;;) co_await e->sleep(sec(1));
}

TEST(EngineCoroTest, TeardownDestroysParkedProcesses) {
  // A server parked in an infinite loop must not leak or crash when the
  // engine is destroyed mid-run (ASAN would flag it).
  Engine e;
  e.spawn("server", forever(&e));
  EXPECT_FALSE(e.run_until(sec(10)));
  EXPECT_EQ(e.live_processes(), 1u);
}

Task<> spawn_child(Engine* e, int* count) {
  ++*count;
  if (*count < 5) e->spawn("child", spawn_child(e, count));
  co_await e->sleep(usec(1));
}

TEST(EngineCoroTest, ProcessesCanSpawnProcesses) {
  Engine e;
  int count = 0;
  e.spawn("root", spawn_child(&e, &count));
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.live_processes(), 0u);
}

// Determinism: two identical runs produce identical event interleaving.
Task<> ping(Engine* e, std::vector<std::string>* log, std::string name,
            int n) {
  for (int i = 0; i < n; ++i) {
    co_await e->sleep(usec(7));
    log->push_back(name + std::to_string(i));
  }
}

std::vector<std::string> run_once() {
  Engine e;
  std::vector<std::string> log;
  e.spawn("a", ping(&e, &log, "a", 50));
  e.spawn("b", ping(&e, &log, "b", 50));
  e.run();
  return log;
}

TEST(EngineCoroTest, RunsAreDeterministic) {
  EXPECT_EQ(run_once(), run_once());
}

// Regression: a cancelled timer must not sit in the queue as a dead
// std::function until its fire time.  Cancellation is reported to the
// engine, prunable heads are dropped eagerly, and once enough garbage
// accumulates the queue is compacted — so cancelling N timers cannot
// leave N corpses behind.
TEST(EngineTest, CancelledTimersAreReclaimed) {
  Engine e;
  // A far-future event keeps the run loop alive past all cancellations.
  e.schedule(sec(10), [] {});
  std::vector<TimerHandle> timers;
  timers.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    timers.push_back(e.schedule_cancellable(sec(1) + usec(i), [] {}));
  }
  EXPECT_EQ(e.queue_size(), 1001u);
  for (auto& t : timers) t.cancel();
  // Compaction triggers while cancelling; whatever garbage remains is
  // far below the 1000 corpses the old behaviour would have kept.
  EXPECT_LT(e.queue_size(), 200u);
  EXPECT_EQ(e.cancelled_pending(), e.queue_size() - 1);
  e.run();
  EXPECT_EQ(e.queue_size(), 0u);
  EXPECT_EQ(e.cancelled_pending(), 0u);
}

TEST(EngineTest, CancelAfterFireIsHarmless) {
  Engine e;
  int fired = 0;
  TimerHandle t = e.schedule_cancellable(usec(1), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
  t.cancel();  // no-op; must not corrupt the (empty) queue
  EXPECT_EQ(e.queue_size(), 0u);
}

TEST(EngineTest, DefaultConstructedTimerHandleIsInert) {
  // A handle that never named an event: not pending, and cancel() is a
  // safe no-op (twice, for good measure) with no engine attached.
  TimerHandle t;
  EXPECT_FALSE(t.pending());
  t.cancel();
  t.cancel();
  EXPECT_FALSE(t.pending());
}

TEST(EngineTest, PendingFlipsExactlyAtFireTime) {
  Engine e;
  TimerHandle t = e.schedule_cancellable(usec(100), [] {});
  bool before = false;
  bool after = false;
  e.schedule(usec(99), [&] { before = t.pending(); });
  // Same-instant events fire in schedule order (FIFO), so this observer
  // runs after the timer's own callback at t=100us.
  e.schedule(usec(100), [&] { after = t.pending(); });
  e.run();
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
  EXPECT_FALSE(t.pending());
  t.cancel();  // fired handle: cancel is a no-op
  EXPECT_EQ(e.cancelled_pending(), 0u);
}

// ---- same-instant tie-break policies ---------------------------------

namespace {

// Schedules `n` same-instant events under `policy` and returns the
// order their ids fired in.
std::vector<int> tie_order(TiePolicy policy, int n) {
  Engine e;
  e.set_tie_policy(policy);
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    e.schedule(usec(10), [&order, i] { order.push_back(i); });
  }
  e.run();
  return order;
}

}  // namespace

TEST(EngineTieBreak, FifoIsScheduleOrderRegardlessOfSeed) {
  const std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7};
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    EXPECT_EQ(tie_order({.kind = TieBreak::kFifo, .seed = seed}, 8), expected);
  }
}

TEST(EngineTieBreak, SeededPermutationIsDeterministicPerSeed) {
  const auto a = tie_order({.kind = TieBreak::kSeededPermutation, .seed = 7}, 8);
  const auto b = tie_order({.kind = TieBreak::kSeededPermutation, .seed = 7}, 8);
  EXPECT_EQ(a, b);
}

TEST(EngineTieBreak, SeededPermutationReordersSameInstantEvents) {
  // Across a handful of seeds at least one must leave FIFO order, and
  // every permutation still fires each event exactly once.
  const std::vector<int> fifo{0, 1, 2, 3, 4, 5, 6, 7};
  bool any_reordered = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto order =
        tie_order({.kind = TieBreak::kSeededPermutation, .seed = seed}, 8);
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, fifo) << "seed " << seed;
    if (order != fifo) any_reordered = true;
  }
  EXPECT_TRUE(any_reordered);
}

TEST(EngineTieBreak, HorizonZeroDegeneratesToFifo) {
  const std::vector<int> fifo{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(tie_order({.kind = TieBreak::kSeededPermutation, .seed = 7,
                       .horizon = 0},
                      8),
            fifo);
}

TEST(EngineTieBreak, DistinctTimesAreNeverReordered) {
  // Tie-break policies only permute *same-instant* events; causality
  // across distinct times is untouchable.
  Engine e;
  e.set_tie_policy({.kind = TieBreak::kSeededPermutation, .seed = 5});
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.schedule(usec(10 * (i + 1)), [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace sim
