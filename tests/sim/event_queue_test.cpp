// Property tests pinning the event queue's order.
//
// The engine's wheel + overflow heap (engine.cpp) must pop events in
// exactly the order the historical single binary heap did: ascending
// (time, key, seq), where key is the tie-break policy's function of
// seq.  The oracle here IS that old comparator — a std::priority_queue
// over (at, key, seq) — driven through the same scripted universe as a
// real Engine: every fired event runs a pure function of its id that
// may schedule children (so sequence numbers stay in lockstep) or
// cancel an earlier timer.  The script stresses every structural edge
// of the new queue: same-instant bursts, zero delays, events landing
// exactly on bucket boundaries, far-future events that overflow to the
// heap, single buckets spilling past the chain threshold, and
// cancellation storms.  Any divergence — a single swap anywhere in the
// fire order — shows up as a mismatched id sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace sim {
namespace {

// Mirrors engine.cpp's splitmix64 so the oracle can reproduce tie keys.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t oracle_tie_key(const TiePolicy& p, std::uint64_t seq) {
  if (p.kind == TieBreak::kFifo || seq >= p.horizon) return seq;
  const std::uint64_t h = splitmix64(p.seed ^ seq);
  if (p.kind == TieBreak::kSeededPermutation) return h;
  return (h & 3) == 0 ? h : seq;  // kPriorityFuzz
}

// ---- the scripted universe ---------------------------------------------
// Everything an event does is a pure function of (workload seed, id), so
// the Engine and the oracle walk identical universes as long as they
// fire the same events in the same order.

constexpr int kInitialEvents = 160;
constexpr int kSpawnCap = 3000;   // total events per run stays bounded
constexpr std::uint64_t kBucketNs = 1024;  // engine wheel bucket width

std::uint64_t h_of(std::uint64_t workload_seed, std::uint64_t id) {
  return splitmix64(workload_seed * 0x9e3779b97f4a7c15ULL + id);
}

// Delay classes chosen to hit the queue's structural edges.
Duration delay_for(std::uint64_t workload_seed, std::uint64_t id) {
  const std::uint64_t h = h_of(workload_seed, id);
  switch (h % 8) {
    case 0: return 0;  // same-instant with the scheduler
    case 1: return usec(5);  // heavy pile-up: one bucket spills its chain
    case 2: return static_cast<Duration>(kBucketNs * ((h >> 8) % 6));
      // exact bucket boundaries, including 0
    case 3: return msec(8) + static_cast<Duration>((h >> 8) % 100000);
      // far future: lands in the overflow heap (window is ~4.19ms)
    case 4: return usec(2) + static_cast<Duration>((h >> 8) % 3);
      // sub-bucket jitter: distinct times inside one bucket
    default: return static_cast<Duration>((h >> 8) % (2 * 1000 * 1000));
      // anywhere in a 2ms spread
  }
}

bool is_cancellable(std::uint64_t workload_seed, std::uint64_t id) {
  return h_of(workload_seed, id) % 16 == 5;
}

bool cancels_one(std::uint64_t workload_seed, std::uint64_t id) {
  return h_of(workload_seed, id) % 16 == 6;
}

int children_for(std::uint64_t workload_seed, std::uint64_t id) {
  const std::uint64_t h = h_of(workload_seed, id) >> 32;
  return static_cast<int>(h % 3);  // 0..2 children per fired event
}

// ---- the oracle: the historical comparator over (at, key, seq) ---------

struct OracleEvent {
  Time at = 0;
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
  std::uint64_t id = 0;
};
struct OracleLater {
  bool operator()(const OracleEvent& a, const OracleEvent& b) const {
    if (a.at != b.at) return a.at > b.at;
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }
};

std::vector<std::uint64_t> oracle_run(std::uint64_t workload_seed,
                                      TiePolicy policy) {
  std::priority_queue<OracleEvent, std::vector<OracleEvent>, OracleLater> q;
  std::unordered_set<std::uint64_t> cancelled;
  std::vector<std::uint64_t> cancellable;  // ids, cancelled oldest-first
  std::size_t next_cancel = 0;
  std::vector<std::uint64_t> fired;
  Time now = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t next_id = 0;
  std::uint64_t spawned = 0;

  auto push = [&](std::uint64_t id) {
    const Time at = now + delay_for(workload_seed, id);
    q.push({at, oracle_tie_key(policy, next_seq), next_seq, id});
    ++next_seq;
    if (is_cancellable(workload_seed, id)) cancellable.push_back(id);
  };

  for (int i = 0; i < kInitialEvents; ++i) push(next_id++);
  while (!q.empty()) {
    const OracleEvent ev = q.top();
    q.pop();
    now = ev.at;
    if (cancelled.count(ev.id) != 0) continue;
    fired.push_back(ev.id);
    if (cancels_one(workload_seed, ev.id) &&
        next_cancel < cancellable.size()) {
      cancelled.insert(cancellable[next_cancel++]);
    }
    const int kids = children_for(workload_seed, ev.id);
    for (int k = 0; k < kids && spawned < kSpawnCap; ++k, ++spawned) {
      push(next_id++);
    }
  }
  return fired;
}

// ---- the engine, walking the same universe -----------------------------

std::vector<std::uint64_t> engine_run(std::uint64_t workload_seed,
                                      TiePolicy policy) {
  Engine e;
  e.set_tie_policy(policy);
  struct State {
    Engine* e = nullptr;
    std::uint64_t workload_seed = 0;
    std::vector<std::uint64_t> fired;
    std::vector<TimerHandle> cancellable;
    std::size_t next_cancel = 0;
    std::uint64_t next_id = 0;
    std::uint64_t spawned = 0;
  } st;
  st.e = &e;
  st.workload_seed = workload_seed;

  struct Fire {
    State* st;
    std::uint64_t id;
    void operator()() const {
      st->fired.push_back(id);
      if (cancels_one(st->workload_seed, id) &&
          st->next_cancel < st->cancellable.size()) {
        st->cancellable[st->next_cancel++].cancel();
      }
      const int kids = children_for(st->workload_seed, id);
      for (int k = 0; k < kids && st->spawned < kSpawnCap; ++k, ++st->spawned) {
        push(st, st->next_id++);
      }
    }
    static void push(State* st, std::uint64_t id) {
      const Duration d = delay_for(st->workload_seed, id);
      if (is_cancellable(st->workload_seed, id)) {
        st->cancellable.push_back(
            st->e->schedule_cancellable(d, Fire{st, id}));
      } else {
        st->e->schedule(d, Fire{st, id});
      }
    }
  };

  for (int i = 0; i < kInitialEvents; ++i) Fire::push(&st, st.next_id++);
  e.run();
  return st.fired;
}

class EventQueueOrder : public ::testing::TestWithParam<TieBreak> {};

TEST_P(EventQueueOrder, MatchesHistoricalComparatorBitForBit) {
  for (std::uint64_t workload_seed = 1; workload_seed <= 8; ++workload_seed) {
    TiePolicy policy;
    policy.kind = GetParam();
    policy.seed = workload_seed * 0x2545f4914f6cdd1dULL;
    const auto expect = oracle_run(workload_seed, policy);
    const auto got = engine_run(workload_seed, policy);
    ASSERT_GT(expect.size(), static_cast<std::size_t>(kInitialEvents));
    ASSERT_EQ(got, expect) << "policy " << to_string(policy.kind)
                           << " workload seed " << workload_seed;
  }
}

TEST_P(EventQueueOrder, MatchesUnderAShrinkerHorizon) {
  // The shrinker lowers TiePolicy::horizon to re-FIFO a suffix of the
  // schedule; key computation straddles the boundary, so the wheel and
  // the oracle must agree there too.
  for (std::uint64_t horizon : {std::uint64_t{0}, std::uint64_t{64},
                                std::uint64_t{777}}) {
    TiePolicy policy;
    policy.kind = GetParam();
    policy.seed = 0xfeedfacecafebeefULL;
    policy.horizon = horizon;
    const auto expect = oracle_run(3, policy);
    const auto got = engine_run(3, policy);
    ASSERT_EQ(got, expect) << "policy " << to_string(policy.kind)
                           << " horizon " << horizon;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EventQueueOrder,
                         ::testing::Values(TieBreak::kFifo,
                                           TieBreak::kSeededPermutation,
                                           TieBreak::kPriorityFuzz),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- cancellation storms ------------------------------------------------

TEST(EventQueueCancellation, StormKeepsCancelledPendingBounded) {
  // A retransmit-heavy run cancels timers by the thousand.  Dead events
  // must be reclaimed eagerly (compaction), not carried to fire time:
  // the population of cancelled-but-queued events stays bounded by the
  // live population, never growing with the total cancel count.
  Engine e;
  std::vector<TimerHandle> handles;
  std::size_t worst = 0;
  int fired = 0;
  int kept = 0;
  for (int round = 0; round < 200; ++round) {
    handles.clear();
    for (int i = 0; i < 100; ++i) {
      handles.push_back(e.schedule_cancellable(
          msec(10) + usec(i), [&fired] { ++fired; }));
    }
    // Cancel 99 of 100; one survivor per round keeps live events queued.
    for (int i = 0; i < 100; ++i) {
      if (i == 57) continue;
      handles[static_cast<std::size_t>(i)].cancel();
    }
    ++kept;
    worst = std::max(worst, e.cancelled_pending());
    // The reclamation invariant from Engine::note_cancelled: compaction
    // fires before the dead ever outnumber the live by more than the
    // hysteresis threshold.
    ASSERT_TRUE(e.cancelled_pending() < 64 ||
                2 * e.cancelled_pending() < e.queue_size() + 2)
        << "round " << round << ": " << e.cancelled_pending() << " dead of "
        << e.queue_size() << " queued";
  }
  // 19800 cancels happened; the dead population never approached that.
  // From the invariant, dead < live + 100, and live tops out at 300.
  EXPECT_LT(worst, 400u);
  e.run();
  EXPECT_EQ(fired, kept);
  EXPECT_EQ(e.cancelled_pending(), 0u);
  EXPECT_EQ(e.queue_size(), 0u);
}

// ---- regressions: stale handles and drain-vs-stop -----------------------

TEST(EngineShutdown, ShutdownInvalidatesPendingHandles) {
  // Regression: pending() used to keep answering true after shutdown()
  // dropped the event queue — the handle outlived the event it named.
  Engine e;
  TimerHandle t = e.schedule_cancellable(msec(1), [] {});
  ASSERT_TRUE(t.pending());
  e.shutdown();
  EXPECT_FALSE(t.pending());
  t.cancel();  // must be harmless on a dead engine
  EXPECT_FALSE(t.pending());
  EXPECT_TRUE(e.is_shut_down());
}

TEST(EngineRunUntil, DrainedSameIterationAsStopReportsDrained) {
  // Regression: when the final event both drained the queue and called
  // stop(), run_until() reported false ("stopped") even though the
  // queue was empty.  Drained is authoritative: callers poll the return
  // value to decide whether more work remains.
  Engine e;
  int fired = 0;
  e.schedule(usec(1), [&] {
    ++fired;
    e.stop();
  });
  EXPECT_TRUE(e.run_until(usec(10)));
  EXPECT_EQ(fired, 1);

  // With work left behind, stop still wins and reports unfinished.
  e.schedule(usec(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule(usec(2), [&] { ++fired; });
  EXPECT_FALSE(e.run_until(usec(10)));
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(e.run_until(usec(10)));
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace sim
