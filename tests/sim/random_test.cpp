// Unit tests for the deterministic RNG.
#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sim {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(RngTest, NextRangeInclusiveBounds) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BoolProbability) {
  Rng r(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.next_exponential(40.0);
  EXPECT_NEAR(sum / 20000.0, 40.0, 1.5);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a1(5), a2(5);
  Rng f1 = a1.fork();
  Rng f2 = a2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
  // fork consumed one draw; parents stay in sync with each other
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.next_u64(), a2.next_u64());
}

}  // namespace
}  // namespace sim
