// Unit tests for accumulators, histograms and series.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sim {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(AccumulatorTest, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.total(), 40.0);
}

TEST(AccumulatorTest, MergeMatchesSinglePass) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double q50 = h.quantile(0.5);
  const double q90 = h.quantile(0.9);
  const double q99 = h.quantile(0.99);
  EXPECT_LE(q50, q90);
  EXPECT_LE(q90, q99);
  EXPECT_GT(q50, 100.0);
  EXPECT_EQ(h.summary().count(), 1000);
}

// The log-linear buckets (32 sub-buckets per octave) must quote
// quantiles within 2% of the exact order statistic — the old
// power-of-two buckets were off by up to ~33% at the tail.
TEST(HistogramTest, QuantileRelativeErrorIsBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // quantile() targets index floor(q * (n - 1)) of the sorted sample.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 0.02 * 500.0);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 0.02 * 900.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 0.02 * 990.0);
  EXPECT_NEAR(h.quantile(1.0), 1000.0, 0.02 * 1000.0);
}

TEST(HistogramTest, TailAccuracyAcrossDecades) {
  // 990 fast observations and 10 six-decades-slower stragglers: the
  // p99 sits at the boundary and p999 deep in the far tail.
  Histogram h;
  for (int i = 0; i < 990; ++i) h.add(1.25);
  for (int i = 0; i < 10; ++i) h.add(1.25e6);
  EXPECT_NEAR(h.quantile(0.5), 1.25, 0.02 * 1.25);
  EXPECT_NEAR(h.quantile(0.99), 1.25, 0.02 * 1.25);
  EXPECT_NEAR(h.quantile(0.999), 1.25e6, 0.02 * 1.25e6);
}

TEST(HistogramTest, SubUnitAndZeroObservations) {
  Histogram h;
  h.add(0.0);
  for (int i = 0; i < 99; ++i) h.add(0.125);
  EXPECT_NEAR(h.quantile(0.5), 0.125, 0.02 * 0.125);
  EXPECT_LT(h.quantile(0.0), 1e-6);  // zero lands in the first fixed-point bucket
  EXPECT_EQ(h.summary().count(), 100);
}

TEST(HistogramTest, HugeValuesSaturateWithoutOverflow) {
  Histogram h;
  h.add(1.0);
  h.add(1e18);  // beyond the fixed-point range: lands in the last bucket
  EXPECT_LE(h.quantile(1.0), 1e18);
  EXPECT_GE(h.quantile(1.0), 1.0);
  EXPECT_EQ(h.summary().count(), 2);
}

TEST(SeriesTest, CrossoverInterpolates) {
  // a starts above b, they cross at x = 15.
  Series a("a"), b("b");
  for (double x : {0.0, 10.0, 20.0, 30.0}) {
    a.add(x, 20.0 - x);     // 20, 10, 0, -10
    b.add(x, x / 2.0);      //  0,  5, 10,  15
  }
  const double cx = a.crossover_x(b);
  EXPECT_NEAR(cx, 40.0 / 3.0, 1e-9);  // 20 - x = x/2  =>  x = 13.33
}

TEST(SeriesTest, NoCrossoverIsNan) {
  Series a("a"), b("b");
  for (double x : {0.0, 1.0, 2.0}) {
    a.add(x, 10.0);
    b.add(x, 1.0);
  }
  EXPECT_TRUE(std::isnan(a.crossover_x(b)));
}

TEST(SeriesTest, EmptySeriesNeverCross) {
  Series a("a"), b("b");
  EXPECT_TRUE(std::isnan(a.crossover_x(b)));
  b.add(0.0, 1.0);
  EXPECT_TRUE(std::isnan(a.crossover_x(b)));  // one side empty
  EXPECT_TRUE(std::isnan(b.crossover_x(a)));
}

TEST(SeriesTest, SinglePointSeriesNeverCross) {
  // A crossover needs a segment; one sample per series is not enough
  // even when the point values straddle each other.
  Series a("a"), b("b");
  a.add(0.0, 5.0);
  b.add(0.0, 1.0);
  EXPECT_TRUE(std::isnan(a.crossover_x(b)));
  EXPECT_TRUE(std::isnan(b.crossover_x(a)));
}

TEST(SeriesTest, CrossoverExactlyOnSample) {
  // The series meet exactly at the x = 1 sample; interpolation must
  // return that sample, not overshoot into the next segment.
  Series a("a"), b("b");
  for (double x : {0.0, 1.0, 2.0}) {
    a.add(x, 2.0 - x);  // 2, 1, 0
    b.add(x, x);        // 0, 1, 2
  }
  EXPECT_DOUBLE_EQ(a.crossover_x(b), 1.0);
  EXPECT_DOUBLE_EQ(b.crossover_x(a), 1.0);
}

}  // namespace
}  // namespace sim
