// Unit tests for WaitList / Gate / OneShot / Mailbox.
#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sim {
namespace {

Task<> wait_and_log(Engine* e, WaitList* list, std::vector<int>* log, int id) {
  (void)e;
  co_await list->wait();
  log->push_back(id);
}

TEST(WaitListTest, WakeOneIsFifo) {
  Engine e;
  WaitList list(e);
  std::vector<int> log;
  for (int i = 0; i < 3; ++i) {
    e.spawn("w" + std::to_string(i), wait_and_log(&e, &list, &log, i));
  }
  e.run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(list.waiting(), 3u);
  list.wake_one();
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0}));
  list.wake_all();
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

Task<> gate_waiter(Engine* e, Gate* gate, int* after) {
  co_await gate->wait();
  *after = static_cast<int>(to_usec(e->now()));
}

Task<> gate_opener(Engine* e, Gate* gate) {
  co_await e->sleep(usec(40));
  gate->open();
}

TEST(GateTest, WaitersReleaseWhenOpened) {
  Engine e;
  Gate gate(e);
  int after = -1;
  e.spawn("waiter", gate_waiter(&e, &gate, &after));
  e.spawn("opener", gate_opener(&e, &gate));
  e.run();
  EXPECT_EQ(after, 40);
}

TEST(GateTest, WaitAfterOpenDoesNotBlock) {
  Engine e;
  Gate gate(e);
  gate.open();
  int after = -1;
  e.spawn("waiter", gate_waiter(&e, &gate, &after));
  e.run();
  EXPECT_EQ(after, 0);
}

Task<> oneshot_taker(OneShot<std::string>* slot, std::string* out) {
  *out = co_await slot->take();
}

Task<> oneshot_filler(Engine* e, OneShot<std::string>* slot) {
  co_await e->sleep(msec(1));
  slot->fulfill("done");
}

TEST(OneShotTest, TakeBlocksUntilFulfilled) {
  Engine e;
  OneShot<std::string> slot(e);
  std::string out;
  e.spawn("taker", oneshot_taker(&slot, &out));
  e.spawn("filler", oneshot_filler(&e, &slot));
  e.run();
  EXPECT_EQ(out, "done");
}

TEST(OneShotTest, FulfillBeforeTakeIsImmediate) {
  Engine e;
  OneShot<int> slot(e);
  slot.fulfill(7);
  EXPECT_TRUE(slot.fulfilled());
  int out = 0;
  e.spawn("taker",
          [](OneShot<int>* s, int* o) -> Task<> { *o = co_await s->take(); }(
              &slot, &out));
  e.run();
  EXPECT_EQ(out, 7);
}

Task<> producer(Engine* e, Mailbox<int>* box, int base, int n) {
  for (int i = 0; i < n; ++i) {
    co_await e->sleep(usec(3));
    box->put(base + i);
  }
}

Task<> consumer(Engine* e, Mailbox<int>* box, std::vector<int>* out, int n) {
  (void)e;
  for (int i = 0; i < n; ++i) out->push_back(co_await box->get());
}

TEST(MailboxTest, DeliversInFifoOrder) {
  Engine e;
  Mailbox<int> box(e);
  std::vector<int> out;
  e.spawn("consumer", consumer(&e, &box, &out, 5));
  e.spawn("producer", producer(&e, &box, 100, 5));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{100, 101, 102, 103, 104}));
}

TEST(MailboxTest, TryGetDoesNotBlock) {
  Engine e;
  Mailbox<int> box(e);
  int v = 0;
  EXPECT_FALSE(box.try_get(v));
  box.put(9);
  EXPECT_TRUE(box.try_get(v));
  EXPECT_EQ(v, 9);
  EXPECT_TRUE(box.empty());
}

TEST(MailboxTest, TwoConsumersShareTheStream) {
  Engine e;
  Mailbox<int> box(e);
  std::vector<int> a, b;
  e.spawn("c1", consumer(&e, &box, &a, 3));
  e.spawn("c2", consumer(&e, &box, &b, 3));
  e.spawn("p", producer(&e, &box, 0, 6));
  e.run();
  EXPECT_EQ(a.size() + b.size(), 6u);
  std::vector<int> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace sim
