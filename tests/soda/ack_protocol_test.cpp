// Ack protocol v2 on the SODA fragment transport (DESIGN.md "ack
// protocol v2"): the Charlotte regression battery ported to the
// request/accept wire.  Pins the cumulative-ack watermark against
// arbitrarily delayed duplicates, the sender-frontier hole repair,
// retransmit accounting under adaptive RTO, and the piggyback win.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "../support/co_check.hpp"
#include "fault/faulty_medium.hpp"
#include "net/csma_bus.hpp"
#include "sim/engine.hpp"
#include "soda/kernel.hpp"

namespace soda {
namespace {

using net::NodeId;

Payload bytes(std::string s) { return Payload(s.begin(), s.end()); }
std::string text(const Payload& p) { return std::string(p.begin(), p.end()); }

// A medium that keeps a copy of the first request fragment leaving
// `watch_src` and can re-inject it later — the "duplicate delayed by
// the network for an arbitrarily long time" that windowed dedup schemes
// (SODA v1's 64-entry done ring) cannot screen.
class ReplayMedium final : public net::Medium {
 public:
  ReplayMedium(net::Medium& inner, NodeId watch_src)
      : inner_(&inner), watch_src_(watch_src) {}

  void attach(NodeId node, net::FrameHandler handler) override {
    inner_->attach(node, std::move(handler));
  }
  void send(net::Frame frame) override {
    stamp(frame);
    if (!captured_.has_value() && frame.src == watch_src_) {
      if (const auto* wf = std::any_cast<Kernel::WireFrame>(&frame.body);
          wf != nullptr && std::holds_alternative<Kernel::ReqFrag>(*wf)) {
        captured_ = frame;  // same id: a duplicate, not a new frame
      }
    }
    inner_->send(std::move(frame));
  }
  void broadcast(net::Frame frame) override {
    stamp(frame);
    inner_->broadcast(std::move(frame));
  }
  [[nodiscard]] std::uint64_t frames_sent() const override {
    return inner_->frames_sent();
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return inner_->bytes_sent();
  }

  void replay() {
    ASSERT_TRUE(captured_.has_value()) << "no ReqFrag frame was captured";
    inner_->send(net::Frame(*captured_));
  }

 private:
  net::Medium* inner_;
  NodeId watch_src_;
  std::optional<net::Frame> captured_;
};

// One request/accept round trip; the server side records the payload it
// took, the client side records the reply it got.
sim::Task<> serve_n(Network* nw, Pid me, Name* out, sim::Gate* ready, int n,
                    std::vector<std::string>* log) {
  Kernel& k = nw->kernel_of(me);
  Name name = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, name), Status::kOk);
  *out = name;
  ready->open();
  for (int i = 0; i < n; ++i) {
    Interrupt intr = co_await k.next_interrupt(me);
    auto* req = std::get_if<RequestInterrupt>(&intr);
    CO_CHECK(req != nullptr);
    auto taken =
        co_await k.accept(me, req->request, Oob{1, 0}, bytes("pong"), 4096);
    CO_CHECK(taken.ok());
    log->push_back("took:" + text(taken.value()));
  }
}

sim::Task<> call_n(Network* nw, Pid me, Pid server, Name* name,
                   sim::Gate* ready, int n, std::vector<std::string>* log) {
  co_await ready->wait();
  Kernel& k = nw->kernel_of(me);
  for (int i = 0; i < n; ++i) {
    auto req = co_await k.request(me, server, *name, Oob{},
                                  bytes("m" + std::to_string(i)), 4096);
    CO_CHECK(req.ok());
    Interrupt intr = co_await k.next_interrupt(me);
    auto* done = std::get_if<CompletionInterrupt>(&intr);
    CO_CHECK(done != nullptr);
    if (log != nullptr) log->push_back("got:" + text(done->data));
  }
}

// Satellite regression: SODA v1 screens whole-request duplicates with a
// 64-entry FIFO of recently accepted request ids, so a duplicate
// fragment delayed past 64 subsequent requests falls out of the window
// and is parked (and serviced) a second time.  The v2 per-peer
// watermark is windowless: the duplicate of request #1 is screened no
// matter how many requests intervene.  Both wires run the identical
// scenario; the v1 half documents the bug, the v2 half pins the fix.
std::string run_delayed_duplicate(bool cumulative) {
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(7));
  ReplayMedium medium(bus, NodeId(1));  // watch the client's requests
  Costs costs;
  costs.ack_timeout = sim::msec(10);
  costs.cumulative_acks = cumulative;
  Network nw(e, 2, medium, costs);

  Pid server = nw.create_process(NodeId(0));
  Pid client = nw.create_process(NodeId(1));
  Name name;
  sim::Gate ready(e);
  constexpr int kRounds = 70;  // > the 64-entry done ring

  std::vector<std::string> served;
  e.spawn("serve", serve_n(&nw, server, &name, &ready, kRounds, &served));
  e.spawn("call", call_n(&nw, client, server, &name, &ready, kRounds, nullptr));
  e.run();
  EXPECT_EQ(served.size(), static_cast<std::size_t>(kRounds));
  EXPECT_EQ(served.front(), "took:m0");
  EXPECT_TRUE(e.process_failures().empty());

  // The network "finds" the long-lost duplicate of request #1, then a
  // genuinely new request follows.  The server takes exactly one more
  // request: on the v2 wire it must be the fresh one.
  medium.replay();
  std::vector<std::string> tail;
  auto one_more = [](Network* n, Pid me, std::vector<std::string>* log)
      -> sim::Task<> {
    Kernel& k = n->kernel_of(me);
    Interrupt intr = co_await k.next_interrupt(me);
    auto* req = std::get_if<RequestInterrupt>(&intr);
    CO_CHECK(req != nullptr);
    auto taken =
        co_await k.accept(me, req->request, Oob{1, 0}, bytes("pong"), 4096);
    CO_CHECK(taken.ok());
    log->push_back("took:" + text(taken.value()));
  };
  auto fresh = [](Network* n, Pid me, Pid srv, Name* nm) -> sim::Task<> {
    Kernel& k = n->kernel_of(me);
    auto req =
        co_await k.request(me, srv, *nm, Oob{}, bytes("fresh"), 4096);
    CO_CHECK(req.ok());
    // On the v1 wire the server services the replayed duplicate instead
    // and this request is never accepted — the task stays parked, which
    // is precisely the defect being documented.
    (void)co_await k.next_interrupt(me);
  };
  e.spawn("serve-tail", one_more(&nw, server, &tail));
  e.spawn("call-fresh", fresh(&nw, client, server, &name));
  e.run();
  EXPECT_EQ(tail.size(), 1u);
  return tail.empty() ? std::string() : tail.front();
}

TEST(SodaAckProtocol, DelayedDuplicateBeyondOldWindowIsScreened) {
  // v1 per-fragment-ack wire: the done ring has forgotten request #1,
  // so the replayed fragment is parked and serviced again.
  EXPECT_EQ(run_delayed_duplicate(false), "took:m0");
  // v2 cumulative watermark: screened, the fresh request is serviced.
  EXPECT_EQ(run_delayed_duplicate(true), "took:fresh");
}

// The sender frontier must repair watermark holes left by abandoned
// sends (Charlotte's "watermark travels with the moved end", restated
// for SODA's per-peer streams): a request that exhausts its transport
// attempts against a silent peer leaves its tseqs permanently unacked.
// Every later fragment carries tseq_base — the sender's lowest live
// tseq — so the receiver jumps its watermark over the hole and the
// cumulative ack stream keeps retiring later sends.  Without the
// repair, the server's acks would be stuck at watermark 0, the client
// would retransmit the second request to exhaustion, and the slow
// accept below would turn into a spurious CrashInterrupt.
TEST(SodaAckProtocol, FrontierRepairUnsticksWatermarkAfterAbandonedSend) {
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(7));
  // Every client->server frame dies until 80 ms: request #1 is
  // abandoned after max_transport_attempts of silence.
  fault::FaultyMedium fm(
      e, bus, 13,
      fault::Plan{}.drop_between(0, sim::msec(80), 1.0, NodeId(1), NodeId(0)));
  Costs costs;
  costs.ack_timeout = sim::msec(10);
  costs.adaptive_rto = false;  // fixed spacing: abandoned well before 80 ms
  Network nw(e, 2, fm, costs);

  Pid server = nw.create_process(NodeId(0));
  Pid client = nw.create_process(NodeId(1));
  Name name;
  sim::Gate ready(e);
  std::vector<std::string> log;

  auto serve = [](sim::Engine* eng, Network* n, Pid me, Name* out,
                  sim::Gate* gate) -> sim::Task<> {
    Kernel& k = n->kernel_of(me);
    Name nm = co_await k.generate_name(me);
    CO_CHECK_EQ(co_await k.advertise(me, nm), Status::kOk);
    *out = nm;
    gate->open();
    Interrupt intr = co_await k.next_interrupt(me);
    auto* req = std::get_if<RequestInterrupt>(&intr);
    CO_CHECK(req != nullptr);
    // Sit on the request for several RTOs: only the cumulative ack can
    // stop the client from retransmitting — and the ack only helps if
    // the watermark has jumped the abandoned request's hole.
    co_await eng->sleep(sim::msec(60));
    auto taken =
        co_await k.accept(me, req->request, Oob{1, 0}, bytes("pong"), 4096);
    CO_CHECK(taken.ok());
  };
  auto call = [](sim::Engine* eng, Network* n, Pid me, Pid srv, Name* nm,
                 sim::Gate* gate, std::vector<std::string>* lg) -> sim::Task<> {
    co_await gate->wait();
    Kernel& k = n->kernel_of(me);
    auto r1 = co_await k.request(me, srv, *nm, Oob{}, bytes("doomed"), 4096);
    CO_CHECK(r1.ok());
    Interrupt i1 = co_await k.next_interrupt(me);
    lg->push_back(std::holds_alternative<CrashInterrupt>(i1) ? "crash"
                                                             : "unexpected");
    co_await eng->sleep(sim::msec(100));  // outlive the drop window
    auto r2 = co_await k.request(me, srv, *nm, Oob{}, bytes("ping"), 4096);
    CO_CHECK(r2.ok());
    Interrupt i2 = co_await k.next_interrupt(me);
    auto* done = std::get_if<CompletionInterrupt>(&i2);
    CO_CHECK(done != nullptr);
    lg->push_back("got:" + text(done->data));
  };
  e.spawn("serve", serve(&e, &nw, server, &name, &ready));
  e.spawn("call", call(&e, &nw, client, server, &name, &ready, &log));
  e.run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "crash");
  EXPECT_EQ(log[1], "got:pong");
  // Exactly the abandoned request's retransmissions: the second request
  // was retired by the (repaired) cumulative ack before its RTO fired.
  EXPECT_EQ(nw.kernel(NodeId(1)).retries(),
            static_cast<std::uint64_t>(costs.max_transport_attempts - 1));
  EXPECT_TRUE(e.process_failures().empty());
}

// Satellite bugfix pin: a re-ack racing a just-armed retransmit timer.
// The original fragment is dropped; the timeout retransmit gets through
// and its cumulative ack races the next timer tick.  With the v1 fixed
// timeout the tick wins: a spurious second retransmit goes out and is
// billed to retries().  With the adaptive RTO the backed-off tick loses
// the race and the counter records exactly the one real retransmission.
// Both runs must deliver exactly once either way.
std::uint64_t run_reack_race(bool adaptive, std::vector<std::string>* log) {
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(7));
  // The only ReqFrag copy before 14 ms is the original transmission
  // (at ~11 ms, after the request call's marshalling sleep); the
  // retransmit leaves one RTO later, after the window.
  fault::FaultyMedium fm(
      e, bus, 11,
      fault::Plan{}.drop_between(0, sim::msec(14), 1.0, NodeId(1), NodeId(0)));
  Costs costs;
  costs.ack_timeout = sim::msec(15);
  costs.ack_coalesce_delay = 0;  // ack the retransmit immediately
  costs.adaptive_rto = adaptive;
  // Slow frame handling so the retransmit's ack lands between the
  // fixed tick (one RTO after the retransmit) and the backed-off tick
  // (two RTOs after): the race both wires are being timed on.
  costs.frame_processing = sim::usec(9000);
  Network nw(e, 2, fm, costs);

  Pid server = nw.create_process(NodeId(0));
  Pid client = nw.create_process(NodeId(1));
  Name name;
  sim::Gate ready(e);
  std::vector<std::string> served;
  e.spawn("serve", serve_n(&nw, server, &name, &ready, 1, &served));
  e.spawn("call", call_n(&nw, client, server, &name, &ready, 1, log));
  e.run();
  EXPECT_EQ(served.size(), 1u);
  EXPECT_TRUE(e.process_failures().empty());
  return nw.kernel(NodeId(1)).retries();
}

TEST(SodaAckProtocol, ReackRaceDoesNotInflateRetransmitsUnderBackoff) {
  std::vector<std::string> fixed_log;
  const std::uint64_t fixed = run_reack_race(false, &fixed_log);
  ASSERT_EQ(fixed_log.size(), 1u);
  EXPECT_EQ(fixed_log[0], "got:pong");
  // v1 pacing: the second tick fires before the ack arrives — a
  // spurious retransmit is in flight and billed.
  EXPECT_EQ(fixed, 2u);

  std::vector<std::string> adaptive_log;
  const std::uint64_t adaptive = run_reack_race(true, &adaptive_log);
  ASSERT_EQ(adaptive_log.size(), 1u);
  EXPECT_EQ(adaptive_log[0], "got:pong");
  // Backoff doubles the second interval: the ack wins the race and the
  // stats stay honest.
  EXPECT_EQ(adaptive, 1u);
  EXPECT_LT(adaptive, fixed);
}

// Piggybacking: on the v2 wire the request fragments' ack rides the
// accept fragments and the accept's ack rides the next request, so the
// wire carries fewer frames than v1's standalone per-fragment acks —
// for the identical workload and identical delivery log.
TEST(SodaAckProtocol, PiggybackedAcksSaveStandaloneFrames) {
  auto run = [](bool cumulative, std::vector<std::string>* served,
                std::vector<std::string>* got) {
    sim::Engine e;
    net::CsmaBus bus(e, sim::Rng(7));
    Costs costs;
    costs.ack_timeout = sim::msec(10);
    costs.cumulative_acks = cumulative;
    costs.ack_coalesce_delay = sim::msec(5);
    costs.frame_processing = sim::usec(200);  // accept within the window
    Network nw(e, 2, bus, costs);

    Pid server = nw.create_process(NodeId(0));
    Pid client = nw.create_process(NodeId(1));
    Name name;
    sim::Gate ready(e);
    constexpr int kRounds = 8;
    e.spawn("serve", serve_n(&nw, server, &name, &ready, kRounds, served));
    e.spawn("call", call_n(&nw, client, server, &name, &ready, kRounds, got));
    e.run();
    EXPECT_TRUE(e.process_failures().empty());
    return nw.total_frames();
  };

  std::vector<std::string> served_off, got_off, served_on, got_on;
  const std::uint64_t frames_off = run(false, &served_off, &got_off);  // v1
  const std::uint64_t frames_on = run(true, &served_on, &got_on);      // v2
  EXPECT_EQ(served_off, served_on);  // identical semantics either way
  EXPECT_EQ(got_off, got_on);
  ASSERT_EQ(got_on.size(), 8u);
  EXPECT_LT(frames_on, frames_off);
}

}  // namespace
}  // namespace soda
