// Unit / integration tests for the simulated SODA kernel.
#include "soda/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "sim/engine.hpp"

namespace soda {
namespace {

using net::NodeId;

Payload bytes(std::string s) { return Payload(s.begin(), s.end()); }
std::string text(const Payload& p) { return std::string(p.begin(), p.end()); }

struct World {
  explicit World(double drop = 0.0, std::size_t nodes = 4)
      : network(engine, nodes, sim::Rng(42), [&] {
          net::CsmaBusParams p;
          p.broadcast_drop_prob = drop;
          return p;
        }()) {}
  sim::Engine engine;
  Network network;
};

// ---- names & discover ------------------------------------------------------

sim::Task<> advertiser(Network* nw, Pid me, Name* out, sim::Gate* ready) {
  Kernel& k = nw->kernel_of(me);
  Name n = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, n), Status::kOk);
  *out = n;
  ready->open();
}

sim::Task<> discoverer(Network* nw, Pid me, Name* name, sim::Gate* ready,
                       std::vector<std::string>* log) {
  co_await ready->wait();
  Kernel& k = nw->kernel_of(me);
  auto found = co_await k.discover(me, *name);
  log->push_back(found.has_value()
                     ? "found:" + std::to_string(found->value())
                     : "not-found");
}

TEST(SodaKernel, DiscoverFindsAdvertisedName) {
  World w;
  Pid a = w.network.create_process(NodeId(0));
  Pid b = w.network.create_process(NodeId(1));
  Name name;
  sim::Gate ready(w.engine);
  std::vector<std::string> log;
  w.engine.spawn("adv", advertiser(&w.network, a, &name, &ready));
  w.engine.spawn("disc", discoverer(&w.network, b, &name, &ready, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "found:" + std::to_string(a.value()));
}

TEST(SodaKernel, DiscoverTimesOutOnUnknownName) {
  World w;
  Pid b = w.network.create_process(NodeId(1));
  sim::Gate ready(w.engine);
  ready.open();
  Name bogus(777);
  std::vector<std::string> log;
  w.engine.spawn("disc", discoverer(&w.network, b, &bogus, &ready, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "not-found");
}

TEST(SodaKernel, GeneratedNamesAreUnique) {
  World w;
  Pid a = w.network.create_process(NodeId(0));
  auto prog = [](Network* nw, Pid me, std::vector<Name>* out) -> sim::Task<> {
    Kernel& k = nw->kernel_of(me);
    for (int i = 0; i < 10; ++i) out->push_back(co_await k.generate_name(me));
  };
  std::vector<Name> names;
  w.engine.spawn("p", prog(&w.network, a, &names));
  w.engine.run();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

// ---- put / accept round trip -------------------------------------------------

// Server: advertise, wait for a request interrupt, accept with a reply.
sim::Task<> echo_server(Network* nw, Pid me, Name* out, sim::Gate* ready,
                        std::vector<std::string>* log) {
  Kernel& k = nw->kernel_of(me);
  Name n = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, n), Status::kOk);
  *out = n;
  ready->open();
  Interrupt intr = co_await k.next_interrupt(me);
  auto* req = std::get_if<RequestInterrupt>(&intr);
  CO_CHECK(req != nullptr);
  log->push_back("server-oob:" + std::to_string(req->oob[0]));
  auto taken = co_await k.accept(me, req->request, Oob{9, 0},
                                 bytes("pong"), 4096);
  CO_CHECK(taken.ok());
  log->push_back("server-got:" + text(taken.value()));
}

sim::Task<> echo_client(Network* nw, Pid me, Pid server, Name* name,
                        sim::Gate* ready, std::vector<std::string>* log) {
  co_await ready->wait();
  Kernel& k = nw->kernel_of(me);
  auto req = co_await k.request(me, server, *name, Oob{5, 0}, bytes("ping"),
                                4096);
  CO_CHECK(req.ok());
  Interrupt intr = co_await k.next_interrupt(me);
  auto* done = std::get_if<CompletionInterrupt>(&intr);
  CO_CHECK(done != nullptr);
  CO_CHECK_EQ(done->request, req.value());
  log->push_back("client-got:" + text(done->data) + "/oob:" +
                 std::to_string(done->oob[0]));
}

TEST(SodaKernel, ExchangeRoundTrip) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  Name name;
  sim::Gate ready(w.engine);
  std::vector<std::string> log;
  w.engine.spawn("server", echo_server(&w.network, s, &name, &ready, &log));
  w.engine.spawn("client",
                 echo_client(&w.network, c, s, &name, &ready, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "server-oob:5");
  EXPECT_EQ(log[1], "server-got:ping");
  EXPECT_EQ(log[2], "client-got:pong/oob:9");
  EXPECT_TRUE(w.engine.process_failures().empty());
}

TEST(SodaKernel, LargePayloadIsFragmentedAndReassembled) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  Name name;
  sim::Gate ready(w.engine);
  std::vector<std::string> log;
  std::string big(1000, 'x');
  big[0] = 'A';
  big[999] = 'Z';

  auto server = [](Network* nw, Pid me, Name* out, sim::Gate* rd,
                   std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = nw->kernel_of(me);
    Name n = co_await k.generate_name(me);
    CO_CHECK_EQ(co_await k.advertise(me, n), Status::kOk);
    *out = n;
    rd->open();
    Interrupt intr = co_await k.next_interrupt(me);
    auto* req = std::get_if<RequestInterrupt>(&intr);
    CO_CHECK(req != nullptr);
    CO_CHECK_EQ(req->send_bytes, 1000u);
    auto taken = co_await k.accept(me, req->request, Oob{}, {}, 4096);
    CO_CHECK(taken.ok());
    CO_CHECK_EQ(taken.value().size(), 1000u);
    lg->push_back(std::string("edges:") +
                  static_cast<char>(taken.value().front()) +
                  static_cast<char>(taken.value().back()));
  };
  auto big_client = [](Network* nw, Pid me, Pid server_pid, Name* nm,
                       sim::Gate* rd, Payload data,
                       std::vector<std::string>* lg) -> sim::Task<> {
    co_await rd->wait();
    Kernel& k = nw->kernel_of(me);
    auto req = co_await k.request(me, server_pid, *nm, Oob{}, std::move(data),
                                  0);
    CO_CHECK(req.ok());
    Interrupt intr = co_await k.next_interrupt(me);
    CO_CHECK(std::holds_alternative<CompletionInterrupt>(intr));
    lg->push_back("client-done");
  };
  w.engine.spawn("server", server(&w.network, s, &name, &ready, &log));
  w.engine.spawn("client",
                 big_client(&w.network, c, s, &name, &ready,
                            Payload(big.begin(), big.end()), &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "edges:AZ");
  EXPECT_EQ(log[1], "client-done");
  // 1000 B at 256 B MTU = 4 request fragments (+1 accept frame).
  EXPECT_GE(w.network.total_frames(), 5u);
}

// ---- handler masking / retry ----------------------------------------------------

sim::Task<> masked_server(Network* nw, Pid me, Name* out, sim::Gate* ready,
                          std::vector<std::string>* log) {
  Kernel& k = nw->kernel_of(me);
  Name n = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, n), Status::kOk);
  k.close_handler(me);  // masked: requests must be NACKed + retried
  *out = n;
  ready->open();
  co_await nw->engine().sleep(sim::msec(60));
  k.open_handler(me);
  Interrupt intr = co_await k.next_interrupt(me);
  auto* req = std::get_if<RequestInterrupt>(&intr);
  CO_CHECK(req != nullptr);
  auto taken = co_await k.accept(me, req->request, Oob{}, {}, 100);
  CO_CHECK(taken.ok());
  log->push_back("served-after-unmask");
}

TEST(SodaKernel, ClosedHandlerDelaysRequestViaKernelRetry) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  Name name;
  sim::Gate ready(w.engine);
  std::vector<std::string> log;
  w.engine.spawn("server", masked_server(&w.network, s, &name, &ready, &log));
  w.engine.spawn("client",
                 echo_client(&w.network, c, s, &name, &ready, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "served-after-unmask");
  EXPECT_GT(w.network.kernel(NodeId(1)).retries(), 0u);
}

TEST(SodaKernel, UnadvertisedNameEventuallyRejects) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  std::vector<std::string> log;
  auto client = [](Network* nw, Pid me, Pid target,
                   std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = nw->kernel_of(me);
    auto req = co_await k.request(me, target, Name(424242), Oob{}, {}, 0);
    CO_CHECK(req.ok());
    Interrupt intr = co_await k.next_interrupt(me);
    CO_CHECK(std::holds_alternative<RejectInterrupt>(intr));
    lg->push_back("rejected");
  };
  w.engine.spawn("client", client(&w.network, c, s, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "rejected");
}

// ---- crash notification ------------------------------------------------------

TEST(SodaKernel, DeathBeforeAcceptRaisesCrashInterrupt) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  Name name;
  sim::Gate ready(w.engine);
  std::vector<std::string> log;

  auto server = [](Network* nw, Pid me, Name* out,
                   sim::Gate* rd) -> sim::Task<> {
    Kernel& k = nw->kernel_of(me);
    Name n = co_await k.generate_name(me);
    CO_CHECK_EQ(co_await k.advertise(me, n), Status::kOk);
    *out = n;
    rd->open();
    // Take the interrupt but never accept; die instead.
    Interrupt intr = co_await k.next_interrupt(me);
    CO_CHECK(std::holds_alternative<RequestInterrupt>(intr));
    nw->terminate(me);
  };
  auto client = [](Network* nw, Pid me, Pid target, Name* nm, sim::Gate* rd,
                   std::vector<std::string>* lg) -> sim::Task<> {
    co_await rd->wait();
    Kernel& k = nw->kernel_of(me);
    auto req = co_await k.request(me, target, *nm, Oob{}, bytes("hi"), 0);
    CO_CHECK(req.ok());
    Interrupt intr = co_await k.next_interrupt(me);
    CO_CHECK(std::holds_alternative<CrashInterrupt>(intr));
    lg->push_back("crash-detected");
  };
  w.engine.spawn("server", server(&w.network, s, &name, &ready));
  w.engine.spawn("client",
                 client(&w.network, c, s, &name, &ready, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "crash-detected");
}

TEST(SodaKernel, RequestToDeadProcessCrashes) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  w.network.terminate(s);
  std::vector<std::string> log;
  auto client = [](Network* nw, Pid me, Pid target,
                   std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = nw->kernel_of(me);
    auto req = co_await k.request(me, target, Name(1), Oob{}, {}, 0);
    CO_CHECK(req.ok());
    Interrupt intr = co_await k.next_interrupt(me);
    CO_CHECK(std::holds_alternative<CrashInterrupt>(intr));
    lg->push_back("dead");
  };
  w.engine.spawn("client", client(&w.network, c, s, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "dead");
}

// ---- per-pair limit ------------------------------------------------------------

TEST(SodaKernel, PerPairOutstandingLimitEnforced) {
  World w;
  Pid s = w.network.create_process(NodeId(0));
  Pid c = w.network.create_process(NodeId(1));
  std::vector<Status> sts;
  auto client = [](Network* nw, Pid me, Pid target,
                   std::vector<Status>* out) -> sim::Task<> {
    Kernel& k = nw->kernel_of(me);
    for (int i = 0; i < 10; ++i) {
      auto r = co_await k.request(me, target, Name(50), Oob{}, {}, 0);
      out->push_back(r.ok() ? Status::kOk : r.error());
    }
  };
  w.engine.spawn("client", client(&w.network, c, s, &sts));
  w.engine.run_until(sim::msec(80));  // before rejects drain the pair count
  ASSERT_EQ(sts.size(), 10u);
  int ok = 0, limited = 0;
  for (Status st : sts) {
    if (st == Status::kOk) ++ok;
    if (st == Status::kTooManyRequests) ++limited;
  }
  EXPECT_EQ(ok, 8);  // default max_outstanding_per_pair
  EXPECT_EQ(limited, 2);
}

// ---- unreliable broadcast -------------------------------------------------------

TEST(SodaKernel, DiscoverIsUnreliableUnderDrops) {
  // With a very lossy bus, discover sometimes fails even though the name
  // exists — the property the LYNX mapping's heuristics must tolerate.
  int found = 0, lost = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::Engine engine;
    net::CsmaBusParams p;
    p.broadcast_drop_prob = 0.5;
    Network nw(engine, 3, sim::Rng(seed), p);
    Pid a = nw.create_process(NodeId(0));
    Pid b = nw.create_process(NodeId(1));
    Name name;
    sim::Gate ready(engine);
    std::vector<std::string> log;
    engine.spawn("adv", advertiser(&nw, a, &name, &ready));
    engine.spawn("disc", discoverer(&nw, b, &name, &ready, &log));
    engine.run();
    if (log.at(0).starts_with("found")) {
      ++found;
    } else {
      ++lost;
    }
  }
  EXPECT_GT(found, 5);
  EXPECT_GT(lost, 2);
}

}  // namespace
}  // namespace soda
