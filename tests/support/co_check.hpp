// Assertion macros usable inside sim::Task coroutines.
//
// gtest's ASSERT_* macros issue a plain `return`, which is ill-formed in
// a coroutine.  CO_CHECK* records a gtest failure *and* throws, so the
// simulated process aborts; the engine records it in process_failures()
// and the test's final EXPECT_TRUE(engine.process_failures().empty())
// (or the gtest failure itself) makes the breakage visible.
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#define CO_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond)) {                                                 \
      ADD_FAILURE() << "CO_CHECK failed: " #cond;                  \
      throw std::runtime_error("CO_CHECK failed: " #cond);         \
    }                                                              \
  } while (0)

#define CO_CHECK_EQ(a, b)                                          \
  do {                                                             \
    if (!((a) == (b))) {                                           \
      std::ostringstream os_;                                      \
      os_ << "CO_CHECK_EQ failed: " #a " == " #b;                  \
      ADD_FAILURE() << os_.str();                                  \
      throw std::runtime_error(os_.str());                         \
    }                                                              \
  } while (0)
