// Unit tests for the parallel sweep driver.
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace sweep {
namespace {

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.enqueue([&count, i] {
      count.fetch_add(1, std::memory_order_relaxed);
      return i * 2;
    }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sum, 2 * (99 * 100 / 2));
}

TEST(SweepTest, MapPreservesOrder) {
  std::vector<int> points(50);
  std::iota(points.begin(), points.end(), 0);
  auto results = map<int, int>(points, [](const int& p) { return p * p; });
  ASSERT_EQ(results.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
  }
}

TEST(SweepTest, ParallelSimulationsAreIndependent) {
  // Each point runs its own deterministic computation; results must not
  // interfere even when run concurrently.
  std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  auto run = [](const std::uint64_t& seed) {
    std::uint64_t x = seed;
    for (int i = 0; i < 10000; ++i) x = x * 6364136223846793005ULL + 1;
    return x;
  };
  auto a = map<std::uint64_t, std::uint64_t>(seeds, run);
  auto b = map<std::uint64_t, std::uint64_t>(seeds, run);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sweep
