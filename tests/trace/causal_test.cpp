// End-to-end causal-identity tests: one TraceId must follow an RPC from
// the client runtime through the kernel and the wire to the server and
// back, so a single causal chain can be filtered out of the stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lynx/charlotte_backend.hpp"
#include "lynx/runtime.hpp"
#include "sim/engine.hpp"
#include "trace/phases.hpp"
#include "trace/trace.hpp"

namespace trace {
namespace {

using net::NodeId;

struct World {
  sim::Engine engine;
  Recorder rec{engine};
  charlotte::Cluster cluster{engine, 4};
  lynx::Process server{engine, "server",
                       lynx::make_charlotte_backend(cluster, NodeId(0))};
  lynx::Process client{engine, "client",
                       lynx::make_charlotte_backend(cluster, NodeId(1))};
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("connect", wire(this));
    engine.run();
    RELYNX_ASSERT(server_end.valid() && client_end.valid());
  }

  static sim::Task<> wire(World* w) {
    auto [se, ce] =
        co_await lynx::CharlotteBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

sim::Task<> echo_server(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    lynx::Incoming in = co_await ctx.receive();
    lynx::Message rep;
    rep.args = in.msg.args;
    co_await ctx.reply(in, std::move(rep));
  }
}

sim::Task<> echo_client(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n) {
  for (int i = 0; i < n; ++i) {
    lynx::Message req = lynx::make_message("echo", {std::string("ping")});
    (void)co_await ctx.call(link, std::move(req));
  }
}

void run_echo(World& w, int n) {
  w.server.spawn_thread("serve", [&](lynx::ThreadCtx& ctx) {
    return echo_server(ctx, w.server_end, n);
  });
  w.client.spawn_thread("drive", [&](lynx::ThreadCtx& ctx) {
    return echo_client(ctx, w.client_end, n);
  });
  w.engine.run();
  ASSERT_TRUE(w.engine.process_failures().empty());
  ASSERT_TRUE(w.server.thread_failures().empty());
  ASSERT_TRUE(w.client.thread_failures().empty());
}

// kSpanEnd/kCtx records leave `label` at 0, so only look at the kinds
// that actually carry one.
bool labelled(const Record& r) {
  return r.kind == Kind::kSpanBegin || r.kind == Kind::kInstant ||
         r.kind == Kind::kText;
}

std::vector<Record> with_label(const Recorder& rec,
                               const std::vector<Record>& records,
                               std::string_view label) {
  std::vector<Record> out;
  for (const Record& r : records) {
    if (labelled(r) && rec.label_name(r.label) == label) out.push_back(r);
  }
  return out;
}

TEST(Causal, OneRpcSharesOneTraceIdAcrossLayers) {
  World w;
  w.boot();
  run_echo(w, 1);

  const auto records = w.rec.snapshot();
  const auto calls = with_label(w.rec, records, "call");
  ASSERT_EQ(calls.size(), 1u);  // one begin record for the one RPC
  ASSERT_EQ(calls[0].kind, Kind::kSpanBegin);
  const TraceId tid = calls[0].trace;
  ASSERT_NE(tid, 0u);

  // Every phase of that one RPC carries the same TraceId, on both sides.
  std::set<std::string> labels_on_trace;
  std::set<std::uint32_t> nodes_on_trace;
  for (const Record& r : records) {
    if (!labelled(r) || r.trace != tid) continue;
    labels_on_trace.insert(w.rec.label_name(r.label));
    nodes_on_trace.insert(r.node);
  }
  for (const char* phase :
       {"call", "call.send", "call.wait", "recv.scatter", "reply.send",
        "frame.tx", "frame.rx"}) {
    EXPECT_TRUE(labels_on_trace.count(phase))
        << "missing phase on trace: " << phase;
  }
  // Client is node 1, server is node 0: the chain crosses the machine
  // boundary.
  EXPECT_TRUE(nodes_on_trace.count(0u));
  EXPECT_TRUE(nodes_on_trace.count(1u));

  // The wire shows at least one tx and one rx in each direction.
  std::size_t tx = 0, rx = 0;
  for (const Record& r : records) {
    if (!labelled(r) || r.trace != tid) continue;
    const std::string& l = w.rec.label_name(r.label);
    if (l == "frame.tx") ++tx;
    if (l == "frame.rx") ++rx;
  }
  EXPECT_GE(tx, 2u);  // request out + reply back
  EXPECT_GE(rx, 2u);
}

TEST(Causal, ConcurrentRpcsGetDistinctTraceIds) {
  World w;
  w.boot();
  run_echo(w, 3);

  const auto records = w.rec.snapshot();
  std::set<TraceId> call_traces;
  for (const Record& r : records) {
    if (r.kind == Kind::kSpanBegin && w.rec.label_name(r.label) == "call") {
      call_traces.insert(r.trace);
    }
  }
  EXPECT_EQ(call_traces.size(), 3u);

  // Filtering the phase table by one TraceId isolates exactly one RPC.
  PhaseTable one(w.rec, *call_traces.begin());
  EXPECT_EQ(one.count("call"), 1u);
  PhaseTable all(w.rec);
  EXPECT_EQ(all.count("call"), 3u);
}

TEST(Causal, PhaseSpansCoverMostOfEndToEndLatency) {
  // The acceptance bar for the decomposition: the recorded client-side
  // "call" spans account for >=95% of measured wall-clock once the
  // one-time link setup is amortized over a few operations (exactly how
  // the benches report span coverage).
  World w;
  w.boot();
  const sim::Time t0 = w.engine.now();
  run_echo(w, 10);
  const double e2e_ms = sim::to_msec(w.engine.now() - t0);

  PhaseTable table(w.rec);
  ASSERT_EQ(table.count("call"), 10u);
  EXPECT_GE(table.total_ms("call"), 0.95 * e2e_ms);
  EXPECT_LE(table.total_ms("call"), e2e_ms);
}

TEST(Causal, DeterministicDigestAcrossIdenticalRuns) {
  auto digest_of_run = [] {
    World w;
    w.boot();
    run_echo(w, 2);
    return w.rec.digest();
  };
  const std::uint64_t d1 = digest_of_run();
  const std::uint64_t d2 = digest_of_run();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, Recorder::kEmptyDigest);
}

}  // namespace
}  // namespace trace
