// Recorder unit tests: interning, span pairing, the context stack, the
// determinism digest (including its survival of ring overwrite), the
// legacy text sink, and the disabled-recorder zero-cost contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace trace {
namespace {

TEST(Recorder, InternsLabelsAndTracks) {
  sim::Engine e;
  Recorder rec(e);
  const std::uint16_t a = rec.intern_label("call");
  const std::uint16_t b = rec.intern_label("call.send");
  const std::uint16_t a2 = rec.intern_label("call");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.label_name(a), "call");
  const std::uint32_t t = rec.intern_track("runtime");
  EXPECT_EQ(t, rec.intern_track("runtime"));
  EXPECT_EQ(rec.track_name(t), "runtime");
}

TEST(Recorder, SpanBeginEndPairAndCarryArgs) {
  sim::Engine e;
  Recorder rec(e);
  const TraceId tid = rec.new_trace();
  const SpanId s = rec.begin_span(3, "runtime", "call", tid, 11, 22);
  EXPECT_NE(s, 0u);
  rec.end_span(3, s);
  auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, Kind::kSpanBegin);
  EXPECT_EQ(records[0].span, s);
  EXPECT_EQ(records[0].trace, tid);
  EXPECT_EQ(records[0].node, 3u);
  EXPECT_EQ(records[0].a, 11u);
  EXPECT_EQ(records[0].b, 22u);
  EXPECT_EQ(records[1].kind, Kind::kSpanEnd);
  EXPECT_EQ(records[1].span, s);
}

TEST(Recorder, SpanScopeEndsOnceAndSurvivesMove) {
  sim::Engine e;
  Recorder rec(e);
  {
    SpanScope outer(&rec, 0, "runtime", "call", 1);
    SpanScope moved = std::move(outer);
    moved.end();
    moved.end();  // idempotent
  }                // dtor after end(): no extra record
  auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, Kind::kSpanBegin);
  EXPECT_EQ(records[1].kind, Kind::kSpanEnd);
}

TEST(Recorder, NullRecorderSpanScopeIsNoop) {
  SpanScope s(nullptr, 0, "runtime", "call", 1);
  s.end();  // must not crash
}

TEST(Recorder, ContextStackPushPop) {
  sim::Engine e;
  Recorder rec(e);
  EXPECT_EQ(rec.context_depth(), 0u);
  rec.push_context(Dim::kProcess, 7);
  rec.push_context(Dim::kThread, 9);
  EXPECT_EQ(rec.context_depth(), 2u);
  rec.pop_context();
  rec.pop_context();
  EXPECT_EQ(rec.context_depth(), 0u);
  auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].kind, Kind::kCtxPush);
  EXPECT_EQ(records[0].dim, Dim::kProcess);
  EXPECT_EQ(records[0].a, 7u);
  EXPECT_EQ(records[3].kind, Kind::kCtxPop);
}

TEST(Recorder, TextRecordsKeepMessages) {
  sim::Engine e;
  Recorder rec(e);
  rec.text(0, "engine", "hello world");
  auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, Kind::kText);
  const std::string* msg = rec.text_of(records[0].seq);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(*msg, "hello world");
}

TEST(Recorder, EngineTraceRoutesThroughRecorder) {
  sim::Engine e;
  Recorder rec(e);
  e.trace("cat", "legacy message");
  auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, Kind::kText);
  EXPECT_EQ(rec.label_name(records[0].label), "cat");
}

TEST(Recorder, RenderTextShowsLegacyMessages) {
  sim::Engine e;
  Recorder rec(e);
  rec.text(1, "kernel", "packet sent");
  rec.instant(1, "wire", "frame.tx", 42);  // structured records: not rendered
  std::ostringstream os;
  render_text(rec, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("kernel: packet sent"), std::string::npos);
  EXPECT_EQ(out.find("frame.tx"), std::string::npos);
}

TEST(Recorder, DigestIsDeterministicAcrossRuns) {
  auto run = [] {
    sim::Engine e;
    Recorder rec(e);
    for (int i = 0; i < 100; ++i) {
      const TraceId t = rec.new_trace();
      const SpanId s = rec.begin_span(0, "runtime", "call", t,
                                      static_cast<std::uint64_t>(i));
      rec.instant(1, "wire", "frame.tx", t, static_cast<std::uint64_t>(i));
      rec.end_span(0, s);
    }
    return rec.digest();
  };
  const std::uint64_t d1 = run();
  const std::uint64_t d2 = run();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, Recorder::kEmptyDigest);
}

TEST(Recorder, DigestSurvivesRingOverwrite) {
  sim::Engine e;
  Recorder small(e, /*ring_capacity=*/16);
  for (int i = 0; i < 1000; ++i) {
    small.instant(0, "wire", "frame.tx", 1, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(small.total_emitted(), 1000u);
  EXPECT_GT(small.overwritten(), 0u);
  EXPECT_LE(small.retained(), 16u);

  // An identical run with a big ring (nothing overwritten) must produce
  // the same digest: the digest covers EMITTED records, not retained.
  sim::Engine e2;
  Recorder big(e2, 4096);
  for (int i = 0; i < 1000; ++i) {
    big.instant(0, "wire", "frame.tx", 1, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(big.overwritten(), 0u);
  EXPECT_EQ(small.digest(), big.digest());
}

TEST(Recorder, DigestDiffersWhenStreamDiffers) {
  sim::Engine e1, e2;
  Recorder a(e1), b(e2);
  a.instant(0, "wire", "frame.tx", 1);
  b.instant(0, "wire", "frame.rx", 1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Recorder, DisabledRecorderEmitsAndAllocatesNothing) {
  sim::Engine e;
  Recorder rec(e);
  rec.enable(false);
  EXPECT_EQ(trace::get(e), nullptr);  // the gate refuses a disabled recorder
  rec.instant(0, "wire", "frame.tx", 1);
  (void)rec.begin_span(0, "runtime", "call", 1);
  rec.text(0, "cat", "dropped");
  EXPECT_EQ(rec.total_emitted(), 0u);
  EXPECT_EQ(rec.allocated_slots(), 0u);  // rings are lazy: nothing touched
  EXPECT_EQ(rec.digest(), Recorder::kEmptyDigest);

  rec.enable(true);
  EXPECT_EQ(trace::get(e), &rec);
  rec.instant(0, "wire", "frame.tx", 1);
  EXPECT_EQ(rec.total_emitted(), 1u);
  EXPECT_GT(rec.allocated_slots(), 0u);
}

TEST(Recorder, GetReturnsNullWithoutRecorder) {
  sim::Engine e;
  EXPECT_EQ(trace::get(e), nullptr);
  {
    Recorder rec(e);
    EXPECT_EQ(trace::get(e), &rec);
  }
  EXPECT_EQ(trace::get(e), nullptr);  // detached on destruction
}

}  // namespace
}  // namespace trace
