// Sink tests: the Chrome trace-event / Perfetto JSON exporter and the
// per-phase latency decomposition table.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/engine.hpp"
#include "trace/perfetto.hpp"
#include "trace/phases.hpp"
#include "trace/trace.hpp"

namespace trace {
namespace {

// A deterministic stream with known span durations: two "call" spans of
// 2 ms and 4 ms on node 0, one 1 ms "frame.tx"-bracketed span on node 1,
// plus an instant and a text record.
void record_known_stream(sim::Engine& e, Recorder& rec) {
  struct Ctx {
    sim::Engine* e;
    Recorder* rec;
  };
  static Ctx ctx;
  ctx = {&e, &rec};
  auto script = [](Ctx* c) -> sim::Task<> {
    const TraceId t = c->rec->new_trace();
    SpanId s = c->rec->begin_span(0, "runtime", "call", t);
    co_await c->e->sleep(sim::msec(2));
    c->rec->end_span(0, s);
    s = c->rec->begin_span(0, "runtime", "call", t);
    co_await c->e->sleep(sim::msec(4));
    c->rec->end_span(0, s);
    s = c->rec->begin_span(1, "wire", "frame.hold", t);
    co_await c->e->sleep(sim::msec(1));
    c->rec->end_span(1, s);
    c->rec->instant(1, "wire", "frame.tx", t, 7, 100);
    c->rec->text(0, "engine", "note");
  };
  e.spawn("script", script(&ctx));
  e.run();
}

TEST(Perfetto, ExportsCompleteEventsAndMetadata) {
  sim::Engine e;
  Recorder rec(e);
  record_known_stream(e, rec);

  std::ostringstream os;
  write_chrome_trace(rec, os);
  const std::string out = os.str();

  // Paired spans export as complete ("X") events with microsecond times.
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  // Instants export as "i" events.
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  // Process/thread naming metadata.
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"call\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"frame.tx\""), std::string::npos);
  // A 4 ms span is 4000 us.
  EXPECT_NE(out.find("\"dur\":4000"), std::string::npos);
  // The JSON-array flavor of the trace-event format.
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), '\n');
}

TEST(Perfetto, WritesFile) {
  sim::Engine e;
  Recorder rec(e);
  record_known_stream(e, rec);
  const std::string path = ::testing::TempDir() + "relynx_sinks_test.json";
  ASSERT_TRUE(write_chrome_trace_file(rec, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(PhaseTable, AggregatesPairedSpansByLabel) {
  sim::Engine e;
  Recorder rec(e);
  record_known_stream(e, rec);

  PhaseTable table(rec);
  EXPECT_EQ(table.count("call"), 2u);
  EXPECT_DOUBLE_EQ(table.total_ms("call"), 6.0);
  EXPECT_DOUBLE_EQ(table.mean_ms("call"), 3.0);
  EXPECT_EQ(table.count("frame.hold"), 1u);
  EXPECT_DOUBLE_EQ(table.total_ms("frame.hold"), 1.0);
  // Instants and text records contribute no phase rows.
  EXPECT_EQ(table.count("frame.tx"), 0u);
  ASSERT_EQ(table.rows().size(), 2u);
  EXPECT_EQ(table.rows()[0].label, "call");  // first-seen order
}

TEST(PhaseTable, FiltersByTraceId) {
  sim::Engine e;
  Recorder rec(e);
  struct Ctx {
    sim::Engine* e;
    Recorder* rec;
  };
  static Ctx ctx;
  ctx = {&e, &rec};
  auto script = [](Ctx* c) -> sim::Task<> {
    const TraceId t1 = c->rec->new_trace();
    const TraceId t2 = c->rec->new_trace();
    SpanId s = c->rec->begin_span(0, "runtime", "call", t1);
    co_await c->e->sleep(sim::msec(2));
    c->rec->end_span(0, s);
    s = c->rec->begin_span(0, "runtime", "call", t2);
    co_await c->e->sleep(sim::msec(8));
    c->rec->end_span(0, s);
  };
  e.spawn("script", script(&ctx));
  e.run();

  PhaseTable all(rec);
  EXPECT_EQ(all.count("call"), 2u);
  EXPECT_DOUBLE_EQ(all.total_ms("call"), 10.0);

  PhaseTable only_first(rec, 1);
  EXPECT_EQ(only_first.count("call"), 1u);
  EXPECT_DOUBLE_EQ(only_first.total_ms("call"), 2.0);
}

TEST(PhaseTable, EmptyRecorderYieldsNoRows) {
  sim::Engine e;
  Recorder rec(e);
  PhaseTable table(rec);
  EXPECT_TRUE(table.rows().empty());
  EXPECT_EQ(table.count("call"), 0u);
  EXPECT_DOUBLE_EQ(table.mean_ms("call"), 0.0);
}

}  // namespace
}  // namespace trace
